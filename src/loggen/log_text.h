#ifndef RWDT_LOGGEN_LOG_TEXT_H_
#define RWDT_LOGGEN_LOG_TEXT_H_

#include <iosfwd>
#include <string_view>
#include <vector>

#include "loggen/sparql_gen.h"

namespace rwdt::loggen {

/// Line-ending dialect of the serialized log. Real-world logs arrive in
/// all four combinations (Windows exports, truncated uploads), so the
/// writers can produce each one and the ingest scanner is differentially
/// tested over all of them.
struct LogTextOptions {
  /// Terminate lines with "\r\n" instead of "\n".
  bool crlf = false;
  /// Write the terminator after the last line too (the POSIX shape).
  /// When false the file ends mid-record, which ingest must still read.
  bool final_newline = true;
};

/// Serializes a log in the raw-text format ingest reads: one query per
/// line. Embedded newlines in query text are replaced with spaces so the
/// line framing survives round-trips (generated queries never contain
/// newlines; corrupted ones may).
void WriteLogText(const std::vector<LogEntry>& log, std::ostream& out,
                  const LogTextOptions& options = {});

/// Serializes in the TSV format: "source<TAB>query" per line. Tabs in
/// the query text are replaced with spaces for the same reason.
void WriteLogTsv(const std::vector<LogEntry>& log, std::string_view source,
                 std::ostream& out, const LogTextOptions& options = {});

}  // namespace rwdt::loggen

#endif  // RWDT_LOGGEN_LOG_TEXT_H_
