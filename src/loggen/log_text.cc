#include "loggen/log_text.h"

#include <ostream>
#include <string>

namespace rwdt::loggen {
namespace {

std::string Sanitize(std::string_view text, bool strip_tabs) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r' || (strip_tabs && c == '\t')) c = ' ';
  }
  return out;
}

}  // namespace

void WriteLogText(const std::vector<LogEntry>& log, std::ostream& out) {
  for (const LogEntry& e : log) {
    out << Sanitize(e.text, /*strip_tabs=*/false) << '\n';
  }
}

void WriteLogTsv(const std::vector<LogEntry>& log, std::string_view source,
                 std::ostream& out) {
  for (const LogEntry& e : log) {
    out << source << '\t' << Sanitize(e.text, /*strip_tabs=*/true) << '\n';
  }
}

}  // namespace rwdt::loggen
