#include "loggen/log_text.h"

#include <ostream>
#include <string>
#include <string_view>

namespace rwdt::loggen {
namespace {

std::string Sanitize(std::string_view text, bool strip_tabs) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r' || (strip_tabs && c == '\t')) c = ' ';
  }
  return out;
}

/// Writes the line terminator for every line except — when
/// `final_newline` is off — the last one.
void Terminate(const LogTextOptions& options, bool last, std::ostream& out) {
  if (last && !options.final_newline) return;
  if (options.crlf) out << '\r';
  out << '\n';
}

}  // namespace

void WriteLogText(const std::vector<LogEntry>& log, std::ostream& out,
                  const LogTextOptions& options) {
  for (size_t i = 0; i < log.size(); ++i) {
    out << Sanitize(log[i].text, /*strip_tabs=*/false);
    Terminate(options, i + 1 == log.size(), out);
  }
}

void WriteLogTsv(const std::vector<LogEntry>& log, std::string_view source,
                 std::ostream& out, const LogTextOptions& options) {
  for (size_t i = 0; i < log.size(); ++i) {
    out << source << '\t' << Sanitize(log[i].text, /*strip_tabs=*/true);
    Terminate(options, i + 1 == log.size(), out);
  }
}

}  // namespace rwdt::loggen
