#ifndef RWDT_LOGGEN_SPARQL_GEN_H_
#define RWDT_LOGGEN_SPARQL_GEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rwdt::loggen {

/// A workload profile describing one query-log source of the paper's
/// Table 2 (DBpedia9-12 ... WikiOrganic/TO). The knobs are calibrated to
/// the *published marginals* (Tables 2-5, Figure 3); every generated
/// query is plain SPARQL text that flows through the full parser +
/// classifier pipeline, so all downstream statistics are measured, not
/// copied.
struct SourceProfile {
  std::string name;
  uint64_t total_queries = 10000;
  /// Fraction of log entries that fail to parse (Table 2:
  /// Valid < Total).
  double invalid_rate = 0.02;
  /// Expected multiplicity of each unique query (Table 2:
  /// Valid / Unique).
  double duplicate_factor = 2.0;
  /// Wikidata-style log (affects C2RPQ reporting downstream).
  bool wikidata_like = false;

  /// Triple-pattern count distribution, buckets 0..11 (last = "11+",
  /// drawn uniformly in [11, 20] plus a tiny tail). Figure 3.
  std::vector<double> triple_count_weights =
      {5, 46, 15, 12, 8, 5, 3, 2, 1.5, 1, 0.8, 0.7};

  // Per-feature usage probabilities (Table 3 marginals).
  double p_filter = 0.46, p_optional = 0.33, p_union = 0.55;
  double p_distinct = 0.30, p_limit = 0.14, p_offset = 0.03;
  double p_orderby = 0.011, p_graph = 0.086, p_values = 0.024;
  double p_minus = 0.007, p_notexists = 0.008, p_exists = 0.0001;
  double p_groupby = 0.028, p_having = 0.0006, p_service = 0.00001;
  double p_count = 0.003, p_avg = 0.00002, p_min = 0.00002,
         p_max = 0.00002, p_sum = 0.00001;
  /// Probability that a predicate position is a property path.
  double p_path = 0.0044;
  /// Probability of a BIND clause.
  double p_bind = 0.002;

  // Query form mix.
  double p_ask = 0.02, p_construct = 0.02, p_describe = 0.03;

  // Conjunctive-core shape mix (Table 7: stars and chains dominate).
  double p_chain_shape = 0.45, p_star_shape = 0.40, p_tree_shape = 0.10,
         p_cyclic_shape = 0.05;
  /// Probability that a triple's object is a constant (IRI/literal); the
  /// paper's canonical-graph analysis "without constants" hinges on it.
  double p_constant_object = 0.55;
  /// Probability that a filter is safe / simple (Section 9.5).
  double p_safe_filter = 0.90;

  /// Table 8 property-path type mix: weights by type string.
  std::map<std::string, double> path_type_weights = {
      {"a*", 50.5},  {"ab*", 13.0}, {"a+", 4.0},   {"ab*c*", 1.5},
      {"A*", 0.6},   {"ab*c", 0.2}, {"a*b*", 0.1}, {"abc*", 0.05},
      {"a?b*", 0.03}, {"A+", 0.01}, {"Ab*", 0.005}, {"word", 24.3},
      {"A", 5.5},    {"A?", 0.06},  {"wordopt", 0.05}, {"^a", 0.04},
      {"abc?", 0.01},
  };
};

/// One generated log entry.
struct LogEntry {
  std::string text;
  bool intended_valid = true;  // generator's intent (parser decides)
};

/// Generates a full log for one source. Deterministic in `seed`.
std::vector<LogEntry> GenerateLog(const SourceProfile& profile,
                                  uint64_t seed);

/// The seventeen source profiles of Table 2, with query counts scaled
/// down by `scale` (positions and relative sizes preserved).
std::vector<SourceProfile> Table2Profiles(uint64_t scale = 5000);

/// Convenience: a single small profile for examples and tests.
SourceProfile ExampleProfile(uint64_t total = 2000);

}  // namespace rwdt::loggen

#endif  // RWDT_LOGGEN_SPARQL_GEN_H_
