#ifndef RWDT_LOGGEN_CORRUPTOR_H_
#define RWDT_LOGGEN_CORRUPTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "loggen/sparql_gen.h"

namespace rwdt::loggen {

/// Deterministic fault injection for generated logs — the kinds of
/// damage real query logs carry (truncated requests, copy/paste
/// mangling, encoding breakage). Each entry is independently corrupted
/// with probability `rate`; a corrupted entry picks one mutation by the
/// relative weights below.
///
/// Every mutation maps onto the ingest error taxonomy:
///   truncation / token damage / unbalanced brackets -> parse or lex
///   errors; utf8 splices -> kEncodingError (rejected before parsing).
struct CorruptionOptions {
  /// Probability in [0,1] that an entry is corrupted at all.
  double rate = 0.2;

  /// Relative weights of the mutation kinds (need not sum to 1).
  double truncate_weight = 3.0;       // cut the tail off mid-token
  double delete_token_weight = 2.0;   // drop one whitespace token
  double swap_tokens_weight = 2.0;    // exchange two adjacent tokens
  double unbalance_weight = 2.0;      // delete one '{' '}' '(' ')'
  double utf8_splice_weight = 1.0;    // inject an invalid UTF-8 byte run

  /// When set (the default), a mutated query that still parses gets a
  /// " )" appended — guaranteed trailing-garbage parse failure — so
  /// "corrupted" reliably implies "invalid" and corruption can never
  /// leak entries into the Valid subset. Turn off to study silent
  /// corruption instead.
  bool ensure_invalid = true;
};

/// Outcome of one corruption pass.
struct CorruptionSummary {
  uint64_t corrupted = 0;             // entries mutated
  uint64_t forced_invalid = 0;        // still parsed; " )" appended
  std::vector<size_t> corrupted_indices;  // ascending entry positions
};

/// Corrupts `log` in place, deterministically in `seed` (independent of
/// the seed that generated the log). Corrupted entries get
/// `intended_valid = false`. Returns which entries were touched so tests
/// can compare the surviving subset against an uncorrupted run.
CorruptionSummary CorruptLog(std::vector<LogEntry>* log, uint64_t seed,
                             const CorruptionOptions& options = {});

}  // namespace rwdt::loggen

#endif  // RWDT_LOGGEN_CORRUPTOR_H_
