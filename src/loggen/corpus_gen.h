#ifndef RWDT_LOGGEN_CORPUS_GEN_H_
#define RWDT_LOGGEN_CORPUS_GEN_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "schema/dtd.h"
#include "tree/tree.h"
#include "tree/xml.h"

namespace rwdt::loggen {

/// Knobs for the synthetic DTD corpus standing in for the Bex et al. /
/// Choi studies (Sections 4.1-4.2): fraction of chain (sequential)
/// content models, of SOREs, of deterministic expressions, of recursive
/// DTDs. Calibrated defaults follow the published findings (>92% chain,
/// >99% SORE, ~35/60 recursive).
struct DtdCorpusOptions {
  size_t num_dtds = 100;
  size_t elements_per_dtd = 8;
  double p_chain_expression = 0.92;
  double p_nondeterministic = 0.05;
  double p_recursive = 0.55;
  double p_kore2 = 0.008;  // non-SORE (symbol repeated) expressions
};

/// Generates a corpus of DTDs. Element names are interned into `dict`.
std::vector<schema::Dtd> GenerateDtdCorpus(const DtdCorpusOptions& options,
                                           Interner* dict, uint64_t seed);

/// Generates a random tree valid w.r.t. the DTD (best effort; recursion
/// is depth-bounded). Returns an empty tree when the DTD admits none
/// within bounds.
tree::Tree GenerateValidTree(const schema::Dtd& dtd, Interner* dict,
                             Rng& rng, size_t max_depth = 8,
                             size_t max_nodes = 400);

/// Knobs for the XML-quality study corpus (Grijzenhout-Marx, Section
/// 3.1): fraction of corrupted documents and the error-category mix
/// (top-3 categories are tag mismatch, premature end, bad UTF-8,
/// together 79.9% of errors in the wild).
struct XmlCorpusOptions {
  size_t num_documents = 1000;
  double p_corrupt = 0.15;  // the study found 85% well-formed
  // Relative weights of injected error kinds.
  double w_tag_mismatch = 42, w_premature_end = 25, w_bad_encoding = 13,
         w_bad_attribute = 8, w_bad_entity = 5, w_bad_comment = 3,
         w_multiple_roots = 2, w_stray_content = 2;
};

struct XmlCorpusDocument {
  std::string text;
  bool intended_well_formed = true;
};

/// Generates XML documents (valid trees serialized) and corrupts a
/// fraction of them with the configured error mix.
std::vector<XmlCorpusDocument> GenerateXmlCorpus(
    const XmlCorpusOptions& options, Interner* dict, uint64_t seed);

/// Knobs for the XPath corpus (Baelde et al. / Pasqua, Section 5):
/// axis usage rates and fragment mix.
struct XPathCorpusOptions {
  size_t num_queries = 5000;
  double p_axis_step = 0.465;       // queries using an explicit axis
  double p_attribute = 0.171;       // attribute axis usage
  double p_upward = 0.036;          // parent/ancestor
  double p_sibling_or_order = 0.02; // following/preceding(-sibling)
  double p_predicate = 0.35;
  double p_negation = 0.08;
  double p_disjunction = 0.10;
  double p_union = 0.05;
  double p_wildcard = 0.15;
};

/// Generates XPath query texts.
std::vector<std::string> GenerateXPathCorpus(
    const XPathCorpusOptions& options, uint64_t seed);

}  // namespace rwdt::loggen

#endif  // RWDT_LOGGEN_CORPUS_GEN_H_
