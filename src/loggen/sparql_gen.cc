#include "loggen/sparql_gen.h"

#include <algorithm>
#include <functional>

#include "obs/log.h"
#include "obs/trace.h"

namespace rwdt::loggen {
namespace {

class QueryGenerator {
 public:
  QueryGenerator(const SourceProfile& profile, Rng& rng, uint64_t query_id)
      : profile_(profile), rng_(rng), query_id_(query_id) {}

  std::string Generate() {
    const size_t n = SampleTripleCount();
    std::vector<std::string> triples = BuildTriples(n);
    std::string body = AssembleBody(std::move(triples));
    return AssembleQuery(std::move(body));
  }

 private:
  std::string Var(size_t i) { return "?v" + std::to_string(i); }

  std::string FreshConstant() {
    // A large constant space keeps generated unique queries distinct.
    return "c" + std::to_string(query_id_ % 100000) + "_" +
           std::to_string(rng_.NextBelow(8));
  }

  std::string Predicate() {
    return "p" + std::to_string(rng_.NextBelow(60));
  }

  size_t SampleTripleCount() {
    const size_t bucket = rng_.NextWeighted(profile_.triple_count_weights);
    if (bucket < 11) return bucket;
    // The "11+" bucket: mostly 11-20, occasionally very large (the paper
    // saw queries with 200-230 triples).
    if (rng_.NextBool(0.01)) {
      return 100 + rng_.NextBelow(130);
    }
    return 11 + rng_.NextBelow(10);
  }

  std::string PathExpression() {
    // Sample a Table 8 type and instantiate with concrete predicates.
    std::vector<std::string> keys;
    std::vector<double> weights;
    for (const auto& [key, w] : profile_.path_type_weights) {
      keys.push_back(key);
      weights.push_back(w);
    }
    const std::string type = keys[rng_.NextWeighted(weights)];
    auto p = [&] { return Predicate(); };
    if (type == "a*") return p() + "*";
    if (type == "a+") return p() + "+";
    if (type == "ab*") return p() + "/" + p() + "*";
    if (type == "ab*c*") return p() + "/" + p() + "*/" + p() + "*";
    if (type == "A*") return "(" + p() + "|" + p() + ")*";
    if (type == "ab*c") return p() + "/" + p() + "*/" + p();
    if (type == "a*b*") return p() + "*/" + p() + "*";
    if (type == "abc*") return p() + "/" + p() + "/" + p() + "*";
    if (type == "a?b*") return p() + "?/" + p() + "*";
    if (type == "A+") return "(" + p() + "|" + p() + ")+";
    if (type == "Ab*") return "(" + p() + "|" + p() + ")/" + p() + "*";
    if (type == "word") {
      const size_t k = 2 + rng_.NextBelow(3);
      std::string out = p();
      for (size_t i = 1; i < k; ++i) out += "/" + p();
      return out;
    }
    if (type == "A") {
      if (rng_.NextBool(0.3)) return "!" + p();
      return "(" + p() + "|" + p() + ")";
    }
    if (type == "A?") return "(" + p() + "|" + p() + ")?";
    if (type == "wordopt") return p() + "/" + p() + "?/" + p() + "?";
    if (type == "^a") return "^" + p();
    if (type == "abc?") return p() + "/" + p() + "/" + p() + "?";
    return p() + "*";
  }

  std::string Object(size_t var_index) {
    if (rng_.NextBool(profile_.p_constant_object)) {
      if (rng_.NextBool(0.25)) {
        return "\"" + std::to_string(rng_.NextBelow(1000)) + "\"";
      }
      return FreshConstant();
    }
    return Var(var_index);
  }

  /// Builds `n` triple patterns over variables, following the shape mix.
  std::vector<std::string> BuildTriples(size_t n) {
    std::vector<std::string> out;
    if (n == 0) return out;
    num_vars_ = 1;
    const double r = rng_.NextDouble();
    const double chain_cut = profile_.p_chain_shape;
    const double star_cut = chain_cut + profile_.p_star_shape;
    const double tree_cut = star_cut + profile_.p_tree_shape;
    enum class Shape { kChain, kStar, kTree, kCyclic } shape;
    if (r < chain_cut) {
      shape = Shape::kChain;
    } else if (r < star_cut) {
      shape = Shape::kStar;
    } else if (r < tree_cut) {
      shape = Shape::kTree;
    } else {
      shape = Shape::kCyclic;
    }
    // Subject chain/star skeleton over variables; constants appear in
    // object positions.
    size_t chain_head = 0;
    for (size_t i = 0; i < n; ++i) {
      std::string subject, object;
      switch (shape) {
        case Shape::kChain:
        case Shape::kCyclic:
          subject = Var(chain_head);
          if (i + 1 == n && shape == Shape::kCyclic && n >= 3) {
            object = Var(0);
          } else if (i + 1 == n &&
                     rng_.NextBool(profile_.p_constant_object)) {
            object = FreshConstant();
          } else {
            object = Var(num_vars_);
            chain_head = num_vars_;
            ++num_vars_;
          }
          break;
        case Shape::kStar:
          subject = Var(0);
          object = Object(num_vars_);
          ++num_vars_;
          break;
        case Shape::kTree: {
          const size_t parent = rng_.NextBelow(num_vars_);
          subject = Var(parent);
          object = Object(num_vars_);
          ++num_vars_;
          break;
        }
      }
      std::string predicate;
      if (rng_.NextBool(profile_.p_path)) {
        predicate = PathExpression();
      } else if (rng_.NextBool(0.03)) {
        predicate = "?p" + std::to_string(i);  // variable predicate
      } else {
        predicate = Predicate();
      }
      out.push_back(subject + " " + predicate + " " + object);
    }
    return out;
  }

  std::string Filter() {
    const std::string v = Var(rng_.NextBelow(std::max<size_t>(num_vars_, 1)));
    if (rng_.NextBool(profile_.p_safe_filter)) {
      switch (rng_.NextBelow(3)) {
        case 0:
          return "FILTER(bound(" + v + "))";
        case 1:
          return "FILTER(lang(" + v + ")=\"en\")";
        default: {
          const std::string w =
              Var(rng_.NextBelow(std::max<size_t>(num_vars_, 1)));
          return "FILTER(" + v + " = " + w + ")";
        }
      }
    }
    switch (rng_.NextBelow(3)) {
      case 0: {
        const std::string w =
            Var(rng_.NextBelow(std::max<size_t>(num_vars_, 1)));
        return "FILTER(" + v + " != " + w + ")";
      }
      case 1:
        return "FILTER(" + v + " > \"" +
               std::to_string(rng_.NextBelow(100)) + "\")";
      default:
        return "FILTER(regex(" + v + ", \"x\"))";
    }
  }

  std::string AssembleBody(std::vector<std::string> triples) {
    std::string body;
    const size_t n = triples.size();

    // UNION: split the triples into two branches. Optional and Union
    // overlap in real logs, so a union branch may itself carry an
    // OPTIONAL part.
    if (n >= 2 && rng_.NextBool(profile_.p_union)) {
      const size_t cut = 1 + rng_.NextBelow(n - 1);
      std::string left, right;
      for (size_t i = 0; i < cut; ++i) left += triples[i] + " . ";
      if (n - cut >= 1 && rng_.NextBool(profile_.p_optional)) {
        const size_t ocut = cut + rng_.NextBelow(n - cut);
        for (size_t i = cut; i < ocut; ++i) right += triples[i] + " . ";
        right += "OPTIONAL { ";
        for (size_t i = ocut; i < n; ++i) right += triples[i] + " . ";
        right += "} ";
      } else {
        for (size_t i = cut; i < n; ++i) right += triples[i] + " . ";
      }
      body = "{ " + left + "} UNION { " + right + "} ";
    } else if (n >= 1 && rng_.NextBool(profile_.p_optional)) {
      const size_t cut = rng_.NextBelow(n);
      for (size_t i = 0; i < cut; ++i) body += triples[i] + " . ";
      body += "OPTIONAL { ";
      for (size_t i = cut; i < n; ++i) body += triples[i] + " . ";
      // Filters over optional-only variables live inside the OPTIONAL
      // (real queries do this; it also keeps the pattern well-designed).
      if (rng_.NextBool(profile_.p_filter) && num_vars_ > 0) {
        body += Filter() + " ";
        filter_emitted_ = true;
      }
      body += "} ";
    } else {
      for (const auto& t : triples) body += t + " . ";
    }

    if (!filter_emitted_ && rng_.NextBool(profile_.p_filter) &&
        num_vars_ > 0) {
      body += Filter() + " ";
    }
    if (rng_.NextBool(profile_.p_values) && num_vars_ > 0) {
      body += "VALUES " + Var(0) + " { " + FreshConstant() + " " +
              FreshConstant() + " } ";
    }
    if (rng_.NextBool(profile_.p_graph)) {
      body = "GRAPH ?g { " + body + "} ";
    }
    if (rng_.NextBool(profile_.p_minus) && n >= 1) {
      body += "MINUS { " + Var(0) + " " + Predicate() + " " +
              Object(num_vars_ + 1) + " } ";
    }
    if (rng_.NextBool(profile_.p_notexists) && num_vars_ > 0) {
      body += "FILTER NOT EXISTS { " + Var(0) + " " + Predicate() + " " +
              "?ne } ";
    }
    if (rng_.NextBool(profile_.p_exists) && num_vars_ > 0) {
      body += "FILTER EXISTS { " + Var(0) + " " + Predicate() + " ?ex } ";
    }
    if (rng_.NextBool(profile_.p_service)) {
      body += "SERVICE wikibase:label { " + Var(0) +
              " rdfs:label ?lbl } ";
    }
    if (rng_.NextBool(profile_.p_bind) && num_vars_ > 0) {
      body += "BIND(" + Var(0) + " AS ?alias) ";
    }
    return body;
  }

  std::string AssembleQuery(std::string body) {
    const double r = rng_.NextDouble();
    std::string head;
    std::string tail;

    const bool group_by =
        rng_.NextBool(profile_.p_groupby) && num_vars_ > 0;
    std::string aggregate_item;
    if (group_by) {
      tail += " GROUP BY " + Var(0);
      std::string fn = "COUNT";
      const double a = rng_.NextDouble();
      const double total = profile_.p_count + profile_.p_avg +
                           profile_.p_min + profile_.p_max +
                           profile_.p_sum;
      if (total > 0) {
        double x = a * total;
        if ((x -= profile_.p_count) < 0) {
          fn = "COUNT";
        } else if ((x -= profile_.p_avg) < 0) {
          fn = "AVG";
        } else if ((x -= profile_.p_min) < 0) {
          fn = "MIN";
        } else if ((x -= profile_.p_max) < 0) {
          fn = "MAX";
        } else {
          fn = "SUM";
        }
      }
      aggregate_item =
          " (" + fn + "(" + Var(num_vars_ > 1 ? 1 : 0) + ") AS ?agg)";
      if (rng_.NextBool(profile_.p_having / std::max(
                            profile_.p_groupby, 1e-9))) {
        tail += " HAVING(?agg > \"1\")";
      }
    }

    if (r < profile_.p_ask) {
      head = "ASK";
    } else if (r < profile_.p_ask + profile_.p_construct) {
      head = "CONSTRUCT { ?v0 rel ?c } WHERE";
      body = body.empty() ? "?v0 " + Predicate() + " ?c . " : body;
    } else if (r < profile_.p_ask + profile_.p_construct +
                       profile_.p_describe) {
      return "DESCRIBE " + FreshConstant();
    } else {
      head = "SELECT";
      if (rng_.NextBool(profile_.p_distinct)) head += " DISTINCT";
      if (group_by) {
        head += " " + Var(0) + aggregate_item;
      } else if (rng_.NextBool(0.5) || num_vars_ == 0) {
        head += " *";
      } else {
        const size_t k =
            1 + rng_.NextBelow(std::min<size_t>(num_vars_, 3));
        for (size_t i = 0; i < k; ++i) head += " " + Var(i);
      }
      head += " WHERE";
    }

    if (rng_.NextBool(profile_.p_orderby) && num_vars_ > 0) {
      tail += " ORDER BY " + Var(0);
    }
    if (rng_.NextBool(profile_.p_limit)) {
      tail += " LIMIT " + std::to_string(1 + rng_.NextBelow(1000));
    }
    if (rng_.NextBool(profile_.p_offset)) {
      tail += " OFFSET " + std::to_string(rng_.NextBelow(1000));
    }
    return head + " { " + body + "}" + tail;
  }

  const SourceProfile& profile_;
  Rng& rng_;
  uint64_t query_id_;
  size_t num_vars_ = 1;
  bool filter_emitted_ = false;
};

std::string Corrupt(std::string text, Rng& rng) {
  if (text.empty()) return "(";
  switch (rng.NextBelow(4)) {
    case 0:  // truncate mid-token and leave an opener dangling
      return text.substr(0, text.size() / 2) + " (";
    case 1: {  // unbalance the braces
      const size_t pos = text.rfind('}');
      if (pos != std::string::npos) {
        text.erase(pos, 1);
      } else {
        text += " }";
      }
      return text;
    }
    case 2:  // garble the head keyword
      text[0] = '%';
      return text;
    default:  // unbalanced parenthesis in a filter
      return text + " )";
  }
}

}  // namespace

std::vector<LogEntry> GenerateLog(const SourceProfile& profile,
                                  uint64_t seed) {
  obs::Span span("generate");
  RWDT_LOG(DEBUG) << "loggen: generating " << profile.total_queries
                  << " queries for profile " << profile.name << " (seed "
                  << seed << ")";
  Rng rng(seed ^ std::hash<std::string>{}(profile.name));
  std::vector<LogEntry> out;
  out.reserve(profile.total_queries);

  const double dup = std::max(profile.duplicate_factor, 1.0);
  const double p_repeat = 1.0 - 1.0 / dup;
  // Each valid draw emits ~dup entries while an invalid draw emits one;
  // correct the per-draw probability so invalid entries make up
  // invalid_rate of the *total*.
  const double r = profile.invalid_rate;
  const double p_invalid_draw =
      r <= 0 ? 0 : (r * dup) / (1.0 - r + r * dup);

  uint64_t produced = 0;
  uint64_t unique_id = 0;
  while (produced < profile.total_queries) {
    LogEntry entry;
    if (rng.NextBool(p_invalid_draw)) {
      QueryGenerator gen(profile, rng, unique_id++);
      entry.text = Corrupt(gen.Generate(), rng);
      entry.intended_valid = false;
      out.push_back(entry);
      ++produced;
      continue;
    }
    QueryGenerator gen(profile, rng, unique_id++);
    entry.text = gen.Generate();
    entry.intended_valid = true;
    // Emit with geometric multiplicity (duplicates in real logs).
    do {
      out.push_back(entry);
      ++produced;
    } while (produced < profile.total_queries && rng.NextBool(p_repeat));
  }
  // Interleave duplicates through the log.
  for (size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.NextBelow(i)]);
  }
  return out;
}

namespace {

SourceProfile WikidataRobotic() {
  SourceProfile p;
  p.wikidata_like = true;
  p.p_path = 0.155;  // ~24% of queries end up with >= 1 path
  p.p_filter = 0.178;
  p.p_optional = 0.17;
  p.p_union = 0.20;
  p.p_distinct = 0.077;
  p.p_limit = 0.185;
  p.p_offset = 0.067;
  p.p_orderby = 0.088;
  p.p_graph = 0.0;
  p.p_values = 0.32;
  p.p_service = 0.084;
  p.p_minus = 0.0086;
  p.p_notexists = 0.0021;
  p.p_exists = 0.0005;
  p.p_groupby = 0.0044;
  p.p_count = 0.0042;
  p.triple_count_weights = {18, 35, 17, 11, 7, 4, 3, 2, 1.2, 0.8, 0.5,
                            0.5};
  return p;
}

SourceProfile WikidataOrganic() {
  SourceProfile p = WikidataRobotic();
  // Organic queries have more triple patterns (Figure 3) and use more
  // features interactively.
  p.triple_count_weights = {6, 22, 20, 15, 11, 8, 6, 4, 3, 2, 1.5, 1.5};
  p.p_path = 0.22;
  p.p_optional = 0.30;
  p.p_service = 0.35;
  p.p_limit = 0.30;
  p.p_orderby = 0.12;
  p.p_groupby = 0.02;
  p.p_count = 0.018;
  return p;
}

SourceProfile DbpediaLike() {
  SourceProfile p;  // defaults are calibrated to DBpedia-BritM
  return p;
}

}  // namespace

std::vector<SourceProfile> Table2Profiles(uint64_t scale) {
  // (name, total, valid, unique) from Table 2, in thousands.
  struct Row {
    const char* name;
    double total_k, valid_k, unique_k;
    int flavor;  // 0 dbpedia-like, 1 small-queries, 2 templated,
                 // 3 wiki robotic, 4 wiki organic, 5 wiki robotic TO,
                 // 6 wiki organic TO
  };
  const Row rows[] = {
      {"DBpedia9-12", 28651, 27622, 13438, 0},
      {"DBpedia13", 5244, 4820, 2628, 0},
      {"DBpedia14", 37220, 33996, 17217, 0},
      {"DBpedia15", 43479, 42710, 13254, 0},
      {"DBpedia16", 15098, 14688, 4370, 0},
      {"DBpedia17", 169110, 164298, 34441, 0},
      {"LGD13", 1928, 1531, 358, 0},
      {"LGD14", 2000, 1952, 629, 0},
      {"BioP13", 4627, 4624, 688, 1},
      {"BioP14", 26439, 26405, 2191, 1},
      {"BioMed13", 883, 883, 27, 1},
      {"SWDF13", 13854, 13671, 1230, 1},
      {"BritM14", 1556, 1546, 135, 2},
      {"WikiRobot/OK", 207539, 207498, 34527, 3},
      {"WikiOrganic/OK", 676, 665, 261, 4},
      {"WikiRobot/TO", 34, 33, 3, 5},
      {"WikiOrganic/TO", 15, 14, 9, 6},
  };
  std::vector<SourceProfile> out;
  for (const Row& row : rows) {
    SourceProfile p;
    switch (row.flavor) {
      case 1:
        p = DbpediaLike();
        // API-style logs: almost everything is a 1-triple lookup.
        p.triple_count_weights = {3, 70, 12, 6, 3, 2, 1.5, 1, 0.7, 0.4,
                                  0.2, 0.2};
        break;
      case 2:
        p = DbpediaLike();
        p.p_union = 0.45;  // fixed templates with unions
        p.triple_count_weights = {0, 10, 15, 30, 25, 10, 5, 3, 1, 0.5,
                                  0.3, 0.2};
        break;
      case 3:
        p = WikidataRobotic();
        break;
      case 4:
        p = WikidataOrganic();
        break;
      case 5:
        p = WikidataRobotic();
        p.triple_count_weights = {2, 10, 14, 15, 14, 12, 9, 7, 5, 4, 3,
                                  5};
        break;
      case 6:
        p = WikidataOrganic();
        p.triple_count_weights = {1, 8, 12, 14, 14, 12, 10, 8, 6, 5, 4,
                                  6};
        break;
      default:
        p = DbpediaLike();
        break;
    }
    p.name = row.name;
    p.total_queries = std::max<uint64_t>(
        static_cast<uint64_t>(row.total_k * 1000.0 /
                              static_cast<double>(scale)),
        60);
    p.invalid_rate =
        row.total_k > 0 ? 1.0 - row.valid_k / row.total_k : 0.0;
    p.duplicate_factor =
        row.unique_k > 0 ? row.valid_k / row.unique_k : 1.0;
    out.push_back(std::move(p));
  }
  return out;
}

SourceProfile ExampleProfile(uint64_t total) {
  SourceProfile p;
  p.name = "example";
  p.total_queries = total;
  return p;
}

}  // namespace rwdt::loggen
