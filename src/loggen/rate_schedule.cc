#include "loggen/rate_schedule.h"

#include <cmath>
#include <string>

#include "common/rng.h"

namespace rwdt::loggen {

const char* RateProfileName(RateProfile p) {
  switch (p) {
    case RateProfile::kConstant:
      return "constant";
    case RateProfile::kDiurnal:
      return "diurnal";
    case RateProfile::kBurst:
      return "burst";
  }
  return "unknown";
}

Result<RateProfile> ParseRateProfile(std::string_view name) {
  if (name == "constant") return RateProfile::kConstant;
  if (name == "diurnal") return RateProfile::kDiurnal;
  if (name == "burst") return RateProfile::kBurst;
  return Status::InvalidArgument("unknown rate profile: " + std::string(name) +
                                 " (want constant|diurnal|burst)");
}

Status RateScheduleOptions::Validate() const {
  if (!(base_qps > 0)) {
    return Status::InvalidArgument("base_qps must be > 0");
  }
  if (profile == RateProfile::kConstant) return Status::Ok();
  if (!(period_s > 0)) {
    return Status::InvalidArgument("period_s must be > 0");
  }
  if (profile == RateProfile::kDiurnal &&
      (amplitude < 0 || amplitude > 1)) {
    return Status::InvalidArgument("amplitude must be in [0, 1]");
  }
  if (profile == RateProfile::kBurst) {
    if (!(burst_qps > 0)) {
      return Status::InvalidArgument("burst_qps must be > 0");
    }
    if (!(burst_duty > 0) || !(burst_duty < 1)) {
      return Status::InvalidArgument("burst_duty must be in (0, 1)");
    }
  }
  return Status::Ok();
}

RateSchedule::RateSchedule(const RateScheduleOptions& options)
    : options_(options) {}

double RateSchedule::RateAt(double t_s) const {
  if (t_s < 0) t_s = 0;
  switch (options_.profile) {
    case RateProfile::kConstant:
      return options_.base_qps;
    case RateProfile::kDiurnal: {
      constexpr double kTwoPi = 6.283185307179586;
      return options_.base_qps *
             (1.0 + options_.amplitude *
                        std::sin(kTwoPi * t_s / options_.period_s));
    }
    case RateProfile::kBurst: {
      const double phase = std::fmod(t_s, options_.period_s);
      return phase < options_.burst_duty * options_.period_s
                 ? options_.burst_qps
                 : options_.base_qps;
    }
  }
  return options_.base_qps;
}

double RateSchedule::MeanRate() const {
  switch (options_.profile) {
    case RateProfile::kConstant:
    case RateProfile::kDiurnal:
      // The sine integrates to zero over a full period.
      return options_.base_qps;
    case RateProfile::kBurst:
      return options_.burst_duty * options_.burst_qps +
             (1.0 - options_.burst_duty) * options_.base_qps;
  }
  return options_.base_qps;
}

double RateSchedule::PeakRate() const {
  switch (options_.profile) {
    case RateProfile::kConstant:
      return options_.base_qps;
    case RateProfile::kDiurnal:
      return options_.base_qps * (1.0 + options_.amplitude);
    case RateProfile::kBurst:
      return options_.burst_qps > options_.base_qps ? options_.burst_qps
                                                    : options_.base_qps;
  }
  return options_.base_qps;
}

std::vector<double> GenerateArrivals(const RateSchedule& schedule,
                                     double horizon_s, uint64_t seed) {
  std::vector<double> arrivals;
  if (!(horizon_s > 0)) return arrivals;
  const double peak = schedule.PeakRate();
  if (!(peak > 0)) return arrivals;
  arrivals.reserve(static_cast<size_t>(schedule.MeanRate() * horizon_s * 1.1) +
                   16);
  Rng rng(seed);
  double t = 0;
  for (;;) {
    // Homogeneous arrivals at the peak rate, thinned down to the
    // instantaneous rate (Lewis-Shedler). 1 - NextDouble() keeps the
    // log argument in (0, 1].
    t += -std::log(1.0 - rng.NextDouble()) / peak;
    if (t >= horizon_s) break;
    if (rng.NextDouble() * peak <= schedule.RateAt(t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

}  // namespace rwdt::loggen
