#ifndef RWDT_LOGGEN_RATE_SCHEDULE_H_
#define RWDT_LOGGEN_RATE_SCHEDULE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rwdt::loggen {

/// Traffic-rate shapes for open-loop load generation. Real query logs
/// are not constant-rate: the paper's sources show strong diurnal
/// cycles (human traffic) and square bursts (robotic batch jobs), so
/// the load generator models all three.
enum class RateProfile {
  kConstant,  // rate(t) = base_qps
  kDiurnal,   // rate(t) = base_qps * (1 + amplitude * sin(2*pi*t/period))
  kBurst,     // rate(t) = burst_qps for the first burst_duty of each
              // period, base_qps for the rest (square wave)
};

const char* RateProfileName(RateProfile p);

/// Parses "constant" / "diurnal" / "burst" (CLI flag values).
Result<RateProfile> ParseRateProfile(std::string_view name);

struct RateScheduleOptions {
  RateProfile profile = RateProfile::kConstant;
  /// Baseline rate in queries per second.
  double base_qps = 100.0;
  /// Cycle length for kDiurnal / kBurst.
  double period_s = 60.0;
  /// kDiurnal swing as a fraction of base_qps, in [0, 1].
  double amplitude = 0.5;
  /// kBurst high-phase rate (>= base_qps for a meaningful burst).
  double burst_qps = 400.0;
  /// Fraction of each period spent at burst_qps, in (0, 1).
  double burst_duty = 0.2;

  /// Rejects non-positive rates/periods and out-of-range fractions.
  Status Validate() const;
};

/// A deterministic rate schedule: instantaneous target rate as a pure
/// function of elapsed time. Shared by tools/loadgen and any future
/// replay harness so traffic shapes are reproducible bit-for-bit.
class RateSchedule {
 public:
  explicit RateSchedule(const RateScheduleOptions& options);

  /// Target rate (queries/sec) at `t_s` seconds from the start. Periodic
  /// profiles wrap; t_s < 0 is clamped to 0.
  double RateAt(double t_s) const;

  /// Closed-form mean rate over one full period (== base_qps for
  /// kConstant and kDiurnal; duty-weighted for kBurst).
  double MeanRate() const;

  /// The maximum of RateAt over a period — the thinning envelope used
  /// by GenerateArrivals.
  double PeakRate() const;

  const RateScheduleOptions& options() const { return options_; }

 private:
  RateScheduleOptions options_;
};

/// Open-loop arrival timestamps (seconds, strictly increasing) over
/// [0, horizon_s): an inhomogeneous Poisson process with intensity
/// `schedule.RateAt`, sampled by thinning against the peak rate.
/// Deterministic in `seed` — identical inputs give the identical
/// sequence on every platform, so a load run can be replayed exactly.
std::vector<double> GenerateArrivals(const RateSchedule& schedule,
                                     double horizon_s, uint64_t seed);

}  // namespace rwdt::loggen

#endif  // RWDT_LOGGEN_RATE_SCHEDULE_H_
