#include "loggen/corruptor.h"

#include <string>
#include <string_view>
#include <utility>

#include "common/interner.h"
#include "common/rng.h"
#include "sparql/parser.h"

namespace rwdt::loggen {
namespace {

enum Mutation : size_t {
  kTruncate = 0,
  kDeleteToken,
  kSwapTokens,
  kUnbalance,
  kUtf8Splice,
};

std::vector<std::string> SplitTokens(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    const size_t start = i;
    while (i < text.size() && text[i] != ' ') ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

void Truncate(std::string* text, Rng& rng) {
  if (text->size() < 2) {
    *text += '\xff';  // too short to cut; damage it outright
    return;
  }
  text->resize(1 + rng.NextBelow(text->size() - 1));
}

void DeleteToken(std::string* text, Rng& rng) {
  auto tokens = SplitTokens(*text);
  if (tokens.size() < 2) {
    Truncate(text, rng);
    return;
  }
  tokens.erase(tokens.begin() +
               static_cast<ptrdiff_t>(rng.NextBelow(tokens.size())));
  *text = JoinTokens(tokens);
}

void SwapTokens(std::string* text, Rng& rng) {
  auto tokens = SplitTokens(*text);
  if (tokens.size() < 2) {
    Truncate(text, rng);
    return;
  }
  const size_t i = rng.NextBelow(tokens.size() - 1);
  std::swap(tokens[i], tokens[i + 1]);
  *text = JoinTokens(tokens);
}

void Unbalance(std::string* text, Rng& rng) {
  std::vector<size_t> brackets;
  for (size_t i = 0; i < text->size(); ++i) {
    const char c = (*text)[i];
    if (c == '{' || c == '}' || c == '(' || c == ')') brackets.push_back(i);
  }
  if (brackets.empty()) {
    Truncate(text, rng);
    return;
  }
  text->erase(brackets[rng.NextBelow(brackets.size())], 1);
}

void Utf8Splice(std::string* text, Rng& rng) {
  // 0xFF never occurs in well-formed UTF-8; 0xC3 followed by 0x28 is a
  // broken two-byte sequence. Either poisons the line for ingest.
  static constexpr std::string_view kSplices[] = {"\xff", "\xc3\x28",
                                                  "\xed\xa0\x80"};
  const std::string_view splice = kSplices[rng.NextBelow(3)];
  const size_t pos = rng.NextBelow(text->size() + 1);
  text->insert(pos, splice.data(), splice.size());
}

bool StillParses(const std::string& text) {
  Interner dict;
  return sparql::ParseSparql(text, &dict).ok();
}

}  // namespace

CorruptionSummary CorruptLog(std::vector<LogEntry>* log, uint64_t seed,
                             const CorruptionOptions& options) {
  CorruptionSummary summary;
  Rng rng(seed);
  const std::vector<double> weights = {
      options.truncate_weight, options.delete_token_weight,
      options.swap_tokens_weight, options.unbalance_weight,
      options.utf8_splice_weight};

  for (size_t i = 0; i < log->size(); ++i) {
    if (!rng.NextBool(options.rate)) continue;
    LogEntry& entry = (*log)[i];
    switch (static_cast<Mutation>(rng.NextWeighted(weights))) {
      case kTruncate:
        Truncate(&entry.text, rng);
        break;
      case kDeleteToken:
        DeleteToken(&entry.text, rng);
        break;
      case kSwapTokens:
        SwapTokens(&entry.text, rng);
        break;
      case kUnbalance:
        Unbalance(&entry.text, rng);
        break;
      case kUtf8Splice:
        Utf8Splice(&entry.text, rng);
        break;
    }
    if (options.ensure_invalid && StillParses(entry.text)) {
      // A mutation can survive parsing (e.g. swapping two variables).
      // Trailing garbage cannot: appending " )" to a complete query is
      // always rejected, so corrupted never leaks into Valid.
      entry.text += " )";
      summary.forced_invalid++;
    }
    entry.intended_valid = false;
    summary.corrupted++;
    summary.corrupted_indices.push_back(i);
  }
  return summary;
}

}  // namespace rwdt::loggen
