#include "loggen/corpus_gen.h"

#include <algorithm>
#include <map>

#include "regex/ast.h"
#include "regex/glushkov.h"

namespace rwdt::loggen {
namespace {

using regex::Regex;
using regex::RegexPtr;

/// Builds a chain (sequential) content model over the given child labels.
RegexPtr ChainContent(const std::vector<SymbolId>& children, Rng& rng,
                      bool allow_repeat) {
  std::vector<RegexPtr> factors;
  for (size_t i = 0; i < children.size(); ++i) {
    RegexPtr base;
    // Occasionally a disjunction factor (a|b).
    if (i + 1 < children.size() && rng.NextBool(0.2)) {
      base = Regex::Union(Regex::Symbol(children[i]),
                          Regex::Symbol(children[i + 1]));
      ++i;
    } else {
      base = Regex::Symbol(children[i]);
    }
    switch (rng.NextBelow(5)) {
      case 0:
        base = Regex::Star(base);
        break;
      case 1:
        base = Regex::Optional(base);
        break;
      case 2:
        base = Regex::Plus(base);
        break;
      default:
        break;  // plain, twice as likely
    }
    factors.push_back(base);
    if (allow_repeat && rng.NextBool(0.5) && !children.empty()) {
      // Repeat an earlier symbol: the expression stops being a SORE.
      factors.push_back(Regex::Symbol(children[rng.NextBelow(
          children.size())]));
      allow_repeat = false;
    }
  }
  if (factors.empty()) return Regex::Epsilon();
  return Regex::Concat(std::move(factors));
}

/// A non-chain content model: nested structure like (ab)* or (a|bc)d.
RegexPtr NestedContent(const std::vector<SymbolId>& children, Rng& rng) {
  if (children.size() < 2) {
    return children.empty() ? Regex::Epsilon()
                            : Regex::Star(Regex::Symbol(children[0]));
  }
  RegexPtr pair = Regex::Concat(Regex::Symbol(children[0]),
                                Regex::Symbol(children[1]));
  RegexPtr rest = Regex::Epsilon();
  if (children.size() > 2) {
    std::vector<RegexPtr> tail;
    for (size_t i = 2; i < children.size(); ++i) {
      tail.push_back(Regex::Symbol(children[i]));
    }
    rest = Regex::Concat(std::move(tail));
  }
  switch (rng.NextBelow(3)) {
    case 0:
      return Regex::Concat(Regex::Star(pair), rest);
    case 1:
      return Regex::Union(Regex::Optional(pair), rest);
    default:
      return Regex::Star(Regex::Union(pair, rest));
  }
}

/// A deliberately non-deterministic content model, e.g. (a|b)*a...
RegexPtr NondeterministicContent(const std::vector<SymbolId>& children,
                                 Rng& rng) {
  if (children.size() < 2) return NestedContent(children, rng);
  const RegexPtr a = Regex::Symbol(children[0]);
  const RegexPtr b = Regex::Symbol(children[1]);
  if (rng.NextBool(0.5)) {
    return Regex::Concat(Regex::Star(Regex::Union(a, b)), a);
  }
  return Regex::Concat(Regex::Optional(a), a);
}

}  // namespace

std::vector<schema::Dtd> GenerateDtdCorpus(const DtdCorpusOptions& options,
                                           Interner* dict, uint64_t seed) {
  Rng rng(seed);
  std::vector<schema::Dtd> out;
  for (size_t d = 0; d < options.num_dtds; ++d) {
    schema::Dtd dtd;
    const size_t n = std::max<size_t>(options.elements_per_dtd, 2);
    std::vector<SymbolId> labels;
    for (size_t i = 0; i < n; ++i) {
      labels.push_back(dict->Intern("e" + std::to_string(d) + "_" +
                                    std::to_string(i)));
    }
    const bool recursive = rng.NextBool(options.p_recursive);
    for (size_t i = 0; i < n; ++i) {
      // Children: labels strictly below in the ordering keeps the DTD
      // non-recursive; a recursive DTD adds a back reference.
      std::vector<SymbolId> children;
      for (size_t j = i + 1; j < n && children.size() < 4; ++j) {
        if (rng.NextBool(0.6)) children.push_back(labels[j]);
      }
      if (recursive && i > 0 && rng.NextBool(0.3)) {
        children.push_back(labels[rng.NextBelow(i + 1)]);
      }
      RegexPtr content;
      if (rng.NextBool(options.p_nondeterministic)) {
        content = NondeterministicContent(children, rng);
      } else if (rng.NextBool(options.p_chain_expression)) {
        content = ChainContent(children, rng,
                               rng.NextBool(options.p_kore2));
      } else {
        content = NestedContent(children, rng);
      }
      dtd.rules[labels[i]] = content;
    }
    dtd.start.insert(labels[0]);
    out.push_back(std::move(dtd));
  }
  return out;
}

namespace {

bool GrowTree(const schema::Dtd& dtd,
              const std::map<SymbolId, regex::Dfa>& dfas, Rng& rng,
              tree::Tree* t, tree::NodeId node, size_t depth,
              size_t max_depth, size_t max_nodes) {
  if (t->NumNodes() > max_nodes) return false;
  const SymbolId label = t->node(node).label;
  auto it = dfas.find(label);
  if (it == dfas.end()) return true;  // no rule: leaf
  const regex::Dfa& dfa = it->second;
  // Random accepted word by walking the DFA, biased toward acceptance
  // as depth grows.
  regex::State state = dfa.start;
  std::vector<SymbolId> word;
  for (int step = 0; step < 24; ++step) {
    const bool want_stop =
        dfa.accept[state] &&
        (depth >= max_depth || rng.NextBool(0.5 + 0.1 * depth));
    if (want_stop) break;
    // Available moves.
    std::vector<size_t> moves;
    for (size_t a = 0; a < dfa.alphabet.size(); ++a) {
      if (dfa.trans[state][a] != regex::kNoState) moves.push_back(a);
    }
    if (moves.empty()) break;
    const size_t pick = moves[rng.NextBelow(moves.size())];
    word.push_back(dfa.alphabet[pick]);
    state = dfa.trans[state][pick];
  }
  if (!dfa.accept[state]) {
    // Walk a shortest accepting completion.
    // BFS from state.
    std::map<regex::State, std::pair<regex::State, SymbolId>> parent;
    std::vector<regex::State> queue = {state};
    parent[state] = {regex::kNoState, kInvalidSymbol};
    regex::State goal = regex::kNoState;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      const regex::State q = queue[qi];
      if (dfa.accept[q]) {
        goal = q;
        break;
      }
      for (size_t a = 0; a < dfa.alphabet.size(); ++a) {
        const regex::State nxt = dfa.trans[q][a];
        if (nxt != regex::kNoState && parent.find(nxt) == parent.end()) {
          parent[nxt] = {q, dfa.alphabet[a]};
          queue.push_back(nxt);
        }
      }
    }
    if (goal == regex::kNoState) return false;
    std::vector<SymbolId> completion;
    for (regex::State cur = goal; parent[cur].first != regex::kNoState;
         cur = parent[cur].first) {
      completion.push_back(parent[cur].second);
    }
    std::reverse(completion.begin(), completion.end());
    for (SymbolId s : completion) word.push_back(s);
  }
  for (SymbolId child_label : word) {
    const tree::NodeId child = t->AddChild(node, child_label);
    if (!GrowTree(dtd, dfas, rng, t, child, depth + 1, max_depth,
                  max_nodes)) {
      return false;
    }
  }
  return true;
}

}  // namespace

tree::Tree GenerateValidTree(const schema::Dtd& dtd, Interner* dict,
                             Rng& rng, size_t max_depth, size_t max_nodes) {
  (void)dict;
  tree::Tree t;
  if (dtd.start.empty()) return t;
  std::map<SymbolId, regex::Dfa> dfas;
  for (const auto& [label, content] : dtd.rules) {
    dfas.emplace(label, regex::ToDfa(content));
  }
  std::vector<SymbolId> starts(dtd.start.begin(), dtd.start.end());
  t.AddRoot(starts[rng.NextBelow(starts.size())]);
  if (!GrowTree(dtd, dfas, rng, &t, t.root(), 1, max_depth, max_nodes)) {
    return tree::Tree();
  }
  return t;
}

std::vector<XmlCorpusDocument> GenerateXmlCorpus(
    const XmlCorpusOptions& options, Interner* dict, uint64_t seed) {
  Rng rng(seed);
  DtdCorpusOptions dtd_options;
  dtd_options.num_dtds = 10;
  dtd_options.p_recursive = 0.2;
  const auto dtds = GenerateDtdCorpus(dtd_options, dict, rng.Next());

  std::vector<XmlCorpusDocument> out;
  const std::vector<double> weights = {
      options.w_tag_mismatch,  options.w_premature_end,
      options.w_bad_encoding,  options.w_bad_attribute,
      options.w_bad_entity,    options.w_bad_comment,
      options.w_multiple_roots, options.w_stray_content};
  while (out.size() < options.num_documents) {
    const auto& dtd = dtds[rng.NextBelow(dtds.size())];
    tree::Tree t = GenerateValidTree(dtd, dict, rng, 6, 120);
    if (t.empty()) continue;
    XmlCorpusDocument doc;
    doc.text = tree::ToXml(t, *dict);
    if (rng.NextBool(options.p_corrupt)) {
      doc.intended_well_formed = false;
      switch (rng.NextWeighted(weights)) {
        case 0: {  // tag mismatch: rename one closing tag
          const size_t pos = doc.text.rfind("</");
          if (pos != std::string::npos && pos + 2 < doc.text.size()) {
            doc.text[pos + 2] = 'Z';
          }
          break;
        }
        case 1:  // premature end
          doc.text = doc.text.substr(0, doc.text.size() / 2);
          break;
        case 2:  // invalid UTF-8 byte inside text content
          doc.text.insert(doc.text.size() / 2, "\xc3\x28");
          break;
        case 3: {  // unquoted attribute
          const size_t pos = doc.text.find('>');
          if (pos != std::string::npos) {
            doc.text.insert(pos, " id=17");
          }
          break;
        }
        case 4: {  // stray ampersand
          const size_t pos = doc.text.find('>');
          if (pos != std::string::npos) {
            doc.text.insert(pos + 1, "ham & eggs");
          }
          break;
        }
        case 5: {  // '--' inside a comment
          const size_t pos = doc.text.find('>');
          if (pos != std::string::npos) {
            doc.text.insert(pos + 1, "<!-- a -- b -->");
          }
          break;
        }
        case 6:  // multiple roots
          doc.text += "<extra/>";
          break;
        default:  // stray content after the root
          doc.text += "trailing";
          break;
      }
    }
    out.push_back(std::move(doc));
  }
  return out;
}

std::vector<std::string> GenerateXPathCorpus(
    const XPathCorpusOptions& options, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  const std::vector<std::string> names = {"a",    "b",   "item", "name",
                                          "node", "ref", "list", "entry"};
  auto name = [&] { return names[rng.NextBelow(names.size())]; };

  for (size_t i = 0; i < options.num_queries; ++i) {
    // Zipf-ish small sizes with a heavy tail (Baelde et al. report a
    // power law; most queries have size <= 13).
    size_t steps = 1 + rng.NextBelow(3);
    if (rng.NextBool(0.15)) steps += rng.NextBelow(6);
    if (rng.NextBool(0.01)) steps += 10 + rng.NextBelow(30);

    std::string q;
    for (size_t s = 0; s < steps; ++s) {
      q += rng.NextBool(0.45) ? "//" : "/";
      // Axis choice.
      if (rng.NextBool(options.p_upward)) {
        q += rng.NextBool(0.5) ? ".." : "ancestor::" + name();
        continue;
      }
      if (rng.NextBool(options.p_sibling_or_order)) {
        q += "following-sibling::" + name();
        continue;
      }
      if (s + 1 == steps && rng.NextBool(options.p_attribute)) {
        q += "@" + name();
        continue;
      }
      q += rng.NextBool(options.p_wildcard) ? "*" : name();
      if (rng.NextBool(options.p_predicate)) {
        if (rng.NextBool(options.p_negation)) {
          q += "[not(" + name() + ")]";
        } else if (rng.NextBool(options.p_disjunction)) {
          q += "[" + name() + " or " + name() + "]";
        } else if (rng.NextBool(0.3)) {
          q += "[" + name() + " and .//" + name() + "]";
        } else {
          q += "[" + name() + "]";
        }
      }
    }
    if (rng.NextBool(options.p_union)) {
      q += " | //" + name();
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace rwdt::loggen
