// Property tests over generated SPARQL corpora: the parser accepts the
// generator's output, algebraic laws of the evaluator hold, and path
// evaluation agrees with the walk-semantics matcher.

#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "loggen/sparql_gen.h"
#include "paths/semantics.h"
#include "sparql/eval.h"
#include "sparql/parser.h"

namespace rwdt::sparql {
namespace {

class SparqlPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    store_ = graph::MakeRdfDataset(120, 3, 3, &dict_, rng);
    // Add predicates the generator uses (p0..p59) over a few entities so
    // generated queries can match something.
    for (int i = 0; i < 200; ++i) {
      store_.Add(dict_.Intern("ent:" + std::to_string(rng.NextBelow(40))),
                 dict_.Intern("p" + std::to_string(rng.NextBelow(8))),
                 dict_.Intern("ent:" + std::to_string(rng.NextBelow(40))));
    }
  }

  Interner dict_;
  graph::TripleStore store_;
};

TEST_P(SparqlPropertyTest, GeneratedQueriesEvaluateWithoutCrashing) {
  loggen::SourceProfile profile = loggen::ExampleProfile(120);
  profile.invalid_rate = 0;
  // Bound sizes so evaluation over the dense test store stays small.
  profile.triple_count_weights = {5, 40, 25, 15, 10, 3, 2, 0, 0, 0, 0, 0};
  Evaluator eval(store_, &dict_);
  size_t evaluated = 0;
  for (const auto& entry : loggen::GenerateLog(profile, GetParam())) {
    auto q = ParseSparql(entry.text, &dict_);
    ASSERT_TRUE(q.ok()) << entry.text;
    const auto rows_or = eval.EvalQuery(q.value());
    ASSERT_TRUE(rows_or.ok()) << entry.text << "\n"
                              << rows_or.status().ToString();
    const auto& rows = rows_or.value();
    // Projection invariant: bindings only contain projected variables.
    if (q.value().form == QueryForm::kSelect &&
        !q.value().select_star && !q.value().projection.empty()) {
      std::set<SymbolId> allowed;
      for (const auto& item : q.value().projection) {
        allowed.insert(item.var.id);
      }
      for (const auto& mu : rows) {
        for (const auto& [var, value] : mu) {
          (void)value;
          EXPECT_TRUE(allowed.count(var)) << entry.text;
        }
      }
    }
    // LIMIT invariant.
    if (q.value().modifiers.limit.has_value()) {
      EXPECT_LE(rows.size(), *q.value().modifiers.limit) << entry.text;
    }
    ++evaluated;
  }
  EXPECT_GT(evaluated, 100u);
}

TEST_P(SparqlPropertyTest, JoinIsCommutativeUpToMultiset) {
  // { A . B } and { B . A } produce the same multiset of solutions.
  Evaluator eval(store_, &dict_);
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"?x p0 ?y", "?y p1 ?z"},
      {"?x p0 ?y", "?x p2 ?z"},
      {"?x pred:links_to ?y", "?y p0 ?z"},
  };
  for (const auto& [a, b] : pairs) {
    auto q1 = ParseSparql("SELECT * WHERE { " + a + " . " + b + " }",
                          &dict_);
    auto q2 = ParseSparql("SELECT * WHERE { " + b + " . " + a + " }",
                          &dict_);
    ASSERT_TRUE(q1.ok() && q2.ok());
    auto r1 = eval.EvalQuery(q1.value()).value();
    auto r2 = eval.EvalQuery(q2.value()).value();
    std::sort(r1.begin(), r1.end());
    std::sort(r2.begin(), r2.end());
    EXPECT_EQ(r1, r2) << a << " / " << b;
  }
}

TEST_P(SparqlPropertyTest, UnionCountsAddUp) {
  Evaluator eval(store_, &dict_);
  auto qa = ParseSparql("SELECT * WHERE { ?x p0 ?y }", &dict_);
  auto qb = ParseSparql("SELECT * WHERE { ?x p1 ?y }", &dict_);
  auto qu = ParseSparql(
      "SELECT * WHERE { { ?x p0 ?y } UNION { ?x p1 ?y } }", &dict_);
  ASSERT_TRUE(qa.ok() && qb.ok() && qu.ok());
  EXPECT_EQ(eval.EvalQuery(qu.value()).value().size(),
            eval.EvalQuery(qa.value()).value().size() +
                eval.EvalQuery(qb.value()).value().size());
}

TEST_P(SparqlPropertyTest, OptionalNeverLosesLeftSolutions) {
  Evaluator eval(store_, &dict_);
  auto plain = ParseSparql("SELECT ?x WHERE { ?x p0 ?y }", &dict_);
  auto opt = ParseSparql(
      "SELECT ?x WHERE { ?x p0 ?y OPTIONAL { ?y p1 ?z } }", &dict_);
  ASSERT_TRUE(plain.ok() && opt.ok());
  // Every left solution appears at least once after the left join.
  EXPECT_GE(eval.EvalQuery(opt.value()).value().size(),
            eval.EvalQuery(plain.value()).value().size());
}

TEST_P(SparqlPropertyTest, PathPatternAgreesWithWalkSemantics) {
  Evaluator eval(store_, &dict_);
  Rng rng(GetParam() + 5);
  for (const std::string text : {"p0/p1", "p0+", "p0*", "(p0|p1)/p2*"}) {
    auto path = paths::ParsePath(text, &dict_);
    ASSERT_TRUE(path.ok());
    const auto pairs = eval.EvalPathPairs(*path.value());
    // Spot-check a sample of the produced pairs against MatchPath.
    size_t checked = 0;
    for (const auto& [s, o] : pairs) {
      if (rng.NextBool(0.8) || checked > 10) continue;
      ++checked;
      const auto match = paths::MatchPath(store_, *path.value(), s, o,
                                          paths::PathSemantics::kWalk);
      EXPECT_TRUE(match.matched) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparqlPropertyTest,
                         ::testing::Values(1, 7, 13));

}  // namespace
}  // namespace rwdt::sparql
