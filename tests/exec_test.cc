// Unit tests for rwdt::exec: per-operator semantics against the
// reference evaluator, the NFA-product path evaluator against
// EvalPathPairs across path shapes and binding shapes, GYO join-forest
// construction, and the planner's verdict dispatch (each certified
// fragment picks its strategy, everything else falls back).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "exec/operators.h"
#include "exec/path_automaton.h"
#include "exec/planner.h"
#include "graph/generators.h"
#include "obs/registry.h"
#include "paths/path.h"
#include "sparql/eval.h"
#include "sparql/parser.h"

namespace rwdt::exec {
namespace {

using sparql::Binding;

std::vector<Binding> Sorted(std::vector<Binding> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    store_ = graph::MakeRdfDataset(80, 3, 3, &dict_, rng);
    // Overlay a denser graph on predicates p0..p5 so hand-written
    // queries join non-trivially.
    for (int i = 0; i < 150; ++i) {
      store_.Add(dict_.Intern("ent:" + std::to_string(rng.NextBelow(30))),
                 dict_.Intern("p" + std::to_string(rng.NextBelow(6))),
                 dict_.Intern("ent:" + std::to_string(rng.NextBelow(30))));
    }
  }

  sparql::Query Parse(const std::string& text) {
    auto q = sparql::ParseSparql(text, &dict_);
    EXPECT_TRUE(q.ok()) << text;
    return q.value();
  }

  /// Plans `text`, checks the chosen strategy, and checks the executor
  /// produces the reference evaluator's bag of solutions.
  void ExpectStrategyAndAgreement(const std::string& text,
                                  Strategy want_strategy) {
    Executor exec(store_, &dict_);
    const sparql::Query q = Parse(text);
    auto plan = exec.MakePlan(q);
    ASSERT_TRUE(plan.ok()) << text;
    EXPECT_EQ(StrategyName(plan.value().strategy),
              std::string(StrategyName(want_strategy)))
        << text << "\nreason: " << plan.value().reason;
    if (want_strategy == Strategy::kFallback) {
      EXPECT_EQ(plan.value().root, nullptr) << text;
    } else {
      EXPECT_NE(plan.value().root, nullptr) << text;
    }
    auto got = exec.Execute(plan.value());
    ASSERT_TRUE(got.ok()) << text;
    sparql::Evaluator eval(store_, &dict_);
    auto want = eval.EvalQuery(q);
    ASSERT_TRUE(want.ok()) << text;
    EXPECT_EQ(Sorted(got.value()), Sorted(want.value())) << text;
  }

  std::vector<SymbolId> AllTerms() const {
    std::set<SymbolId> terms;
    for (const auto& t : store_.triples()) {
      terms.insert(t.s);
      terms.insert(t.o);
    }
    return {terms.begin(), terms.end()};
  }

  Interner dict_;
  graph::TripleStore store_;
};

// --- Planner dispatch ------------------------------------------------

TEST_F(ExecTest, AcyclicCqRunsYannakakis) {
  ExpectStrategyAndAgreement("SELECT * WHERE { ?x p0 ?y . ?y p1 ?z }",
                             Strategy::kYannakakis);
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0 ?a . ?x p1 ?b . ?x p2 ?c }",
      Strategy::kYannakakis);
}

TEST_F(ExecTest, DisjointConjunctionIsAcyclic) {
  // A cartesian product is (trivially) acyclic; Yannakakis handles it.
  ExpectStrategyAndAgreement("SELECT * WHERE { ?x p0 ?y . ?z p5 ?w }",
                             Strategy::kYannakakis);
}

TEST_F(ExecTest, TriangleRunsHtwJoinOrder) {
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0 ?y . ?y p1 ?z . ?z p2 ?x }",
      Strategy::kHtwJoinOrder);
}

TEST_F(ExecTest, FilteredCqRunsHtwJoinOrder) {
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0 ?y . ?y p1 ?z . FILTER (?x != ?z) }",
      Strategy::kHtwJoinOrder);
}

TEST_F(ExecTest, TransitivePathRunsNfaProduct) {
  ExpectStrategyAndAgreement("SELECT * WHERE { ?x p0+ ?y }",
                             Strategy::kNfaPathProduct);
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0* ?y . ?y p1 ?z }",
      Strategy::kNfaPathProduct);
}

TEST_F(ExecTest, WellDesignedOptionalRunsPatternTree) {
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0 ?y OPTIONAL { ?y p1 ?z } }",
      Strategy::kPatternTree);
}

TEST_F(ExecTest, UnionFallsBack) {
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { { ?x p0 ?y } UNION { ?x p1 ?y } }",
      Strategy::kFallback);
}

TEST_F(ExecTest, RepeatedVariableTriple) {
  ExpectStrategyAndAgreement("SELECT * WHERE { ?x p0 ?x }",
                             Strategy::kYannakakis);
}

TEST_F(ExecTest, EmptyMatchStillAgrees) {
  // p59 never occurs in the store; every strategy must produce the
  // empty bag, not crash.
  ExpectStrategyAndAgreement("SELECT * WHERE { ?x p59 ?y . ?y p0 ?z }",
                             Strategy::kYannakakis);
}

TEST_F(ExecTest, ExistsFilterKeepsItsScope) {
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0 ?y . FILTER EXISTS { ?y p1 ?z } }",
      Strategy::kHtwJoinOrder);
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0 ?y . FILTER NOT EXISTS { ?y p1 ?z } }",
      Strategy::kHtwJoinOrder);
}

TEST_F(ExecTest, ModifiersAreSharedWithTheEvaluator) {
  ExpectStrategyAndAgreement(
      "SELECT ?x (COUNT(?y) AS ?c) WHERE { ?x p0 ?y } "
      "GROUP BY ?x ORDER BY ?x LIMIT 5",
      Strategy::kYannakakis);
  // OFFSET/LIMIT without ORDER BY slices an unspecified row order, so it
  // is only compared under a deterministic sort key.
  ExpectStrategyAndAgreement(
      "SELECT DISTINCT ?x WHERE { ?x p0 ?y . ?y p1 ?z } "
      "ORDER BY ?x OFFSET 2 LIMIT 7",
      Strategy::kYannakakis);
}

TEST_F(ExecTest, PlanToJsonNamesStrategyAndFragment) {
  Executor exec(store_, &dict_);
  auto plan = exec.MakePlan(Parse("SELECT * WHERE { ?x p0 ?y . ?y p1 ?z }"));
  ASSERT_TRUE(plan.ok());
  const std::string json = plan.value().ToJson();
  EXPECT_NE(json.find("\"strategy\":\"yannakakis\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"fragment\":\"cq\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"op\":\"yannakakis\""), std::string::npos) << json;

  auto fb = exec.MakePlan(
      Parse("SELECT * WHERE { { ?x p0 ?y } UNION { ?x p1 ?y } }"));
  ASSERT_TRUE(fb.ok());
  const std::string fb_json = fb.value().ToJson();
  EXPECT_NE(fb_json.find("\"strategy\":\"fallback\""), std::string::npos)
      << fb_json;
  EXPECT_NE(fb_json.find("\"plan\":null"), std::string::npos) << fb_json;
}

TEST_F(ExecTest, PlansAreMetered) {
  auto* c = obs::MetricRegistry::Global().GetCounter(
      "rwdt_exec_plans_total",
      "Physical plans produced, by planner strategy.",
      {{"strategy", "yannakakis"}});
  const uint64_t before = c->value();
  Executor exec(store_, &dict_);
  ASSERT_TRUE(
      exec.MakePlan(Parse("SELECT * WHERE { ?x p0 ?y . ?y p1 ?z }")).ok());
  EXPECT_EQ(c->value(), before + 1);
}

TEST_F(ExecTest, ResourceLimitsSurfaceAsErrors) {
  ExecOptions options;
  options.limits.max_steps = 1;
  Executor exec(store_, &dict_);
  Executor tiny(store_, &dict_, options);
  // The fallback path inherits the evaluator's budget...
  auto fb = tiny.Run(
      Parse("SELECT * WHERE { { ?x p0 ?y } UNION { ?x p1 ?y } }"));
  ASSERT_FALSE(fb.ok());
  EXPECT_EQ(fb.status().code(), Code::kResourceExhausted);
  // ...and an unconstrained executor over the same store succeeds.
  ASSERT_TRUE(
      exec.Run(Parse("SELECT * WHERE { { ?x p0 ?y } UNION { ?x p1 ?y } }"))
          .ok());
}

// --- Join forest -----------------------------------------------------

TEST_F(ExecTest, JoinForestAcceptsAcyclicShapes) {
  const SymbolId a = 1, b = 2, c = 3, d = 4;
  EXPECT_TRUE(BuildJoinForest({}).ok);
  EXPECT_TRUE(BuildJoinForest({{a, b}}).ok);
  EXPECT_TRUE(BuildJoinForest({{a, b}, {b, c}, {c, d}}).ok);  // chain
  EXPECT_TRUE(BuildJoinForest({{a, b}, {a, c}, {a, d}}).ok);  // star
  EXPECT_TRUE(BuildJoinForest({{a, b}, {c, d}}).ok);  // disjoint
}

TEST_F(ExecTest, JoinForestRejectsCycles) {
  const SymbolId a = 1, b = 2, c = 3, d = 4;
  EXPECT_FALSE(BuildJoinForest({{a, b}, {b, c}, {c, a}}).ok);  // triangle
  EXPECT_FALSE(
      BuildJoinForest({{a, b}, {b, c}, {c, d}, {d, a}}).ok);  // square
}

// --- NFA-product path evaluation ------------------------------------

TEST_F(ExecTest, PathNfaMatchesEvalPathPairs) {
  sparql::Evaluator eval(store_, &dict_);
  const std::vector<SymbolId> terms = AllTerms();
  // One subject and one object that certainly occur in the store.
  const SymbolId some_s = store_.triples().front().s;
  const SymbolId some_o = store_.triples().front().o;
  for (const std::string text :
       {"p0", "^p0", "p0/p1", "p0|p1", "p0*", "p0+", "p0?", "(p0|p1)+",
        "(^p0)*", "!(p0)", "!(p0|^p1)", "p0/p1*", "^p0/p0", "(p0/p1)+",
        "!(^p2)+"}) {
    auto path = paths::ParsePath(text, &dict_);
    ASSERT_TRUE(path.ok()) << text;
    const PathNfa nfa = CompilePathNfa(*path.value());
    const struct {
      SymbolId s, o;
    } shapes[] = {
        {kInvalidSymbol, kInvalidSymbol},
        {some_s, kInvalidSymbol},
        {kInvalidSymbol, some_o},
        {some_s, some_o},
        {some_s, some_s},
    };
    for (const auto& shape : shapes) {
      // Pair order is unspecified on both sides (the evaluator's base
      // cases return index order); compare as sorted sets.
      auto got = EvalPathNfa(store_, nfa, terms, shape.s, shape.o);
      auto want = eval.EvalPathPairs(*path.value(), shape.s, shape.o);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << text << " s=" << shape.s << " o=" << shape.o;
    }
  }
}

TEST_F(ExecTest, PathNfaZeroLengthCornerFallsBackInOperator) {
  // `p0?` with the object bound to a constant that is not a term of the
  // store: the evaluator's bare-`e?` zero-length rule emits (o, o) even
  // then. AutomatonPathScanOp must reproduce that via its documented
  // fallback, end to end.
  dict_.Intern("c_unseen");
  ExpectStrategyAndAgreement("SELECT * WHERE { ?x p0? c_unseen }",
                             Strategy::kNfaPathProduct);
}

// --- Operator units --------------------------------------------------

TEST_F(ExecTest, DrainIsRepeatable) {
  // Close-then-Open restarts the stream: Drain twice, same bag.
  Executor exec(store_, &dict_);
  auto plan =
      exec.MakePlan(Parse("SELECT * WHERE { ?x p0 ?y . ?y p1 ?z }"));
  ASSERT_TRUE(plan.ok());
  auto once = plan.value().root->Drain();
  auto twice = plan.value().root->Drain();
  ASSERT_TRUE(once.ok() && twice.ok());
  EXPECT_EQ(Sorted(once.value()), Sorted(twice.value()));
}

TEST_F(ExecTest, MergeBindingsPrefersAgreedValues) {
  Binding a{{1, 10}, {2, 20}};
  Binding b{{2, 20}, {3, 30}};
  const Binding m = MergeBindings(a, b);
  EXPECT_EQ(m, (Binding{{1, 10}, {2, 20}, {3, 30}}));
}

TEST_F(ExecTest, NestedOptionalStaysExact) {
  ExpectStrategyAndAgreement(
      "SELECT * WHERE { ?x p0 ?y OPTIONAL { ?y p1 ?z OPTIONAL "
      "{ ?z p2 ?w } } }",
      Strategy::kPatternTree);
}

TEST_F(ExecTest, OptionalWithPathLeaf) {
  // OPTIONAL whose inner block is a path: planner must still produce the
  // evaluator's bag (nested-loop left join when hash keys are unsafe).
  Executor exec(store_, &dict_);
  const sparql::Query q =
      Parse("SELECT * WHERE { ?x p0 ?y OPTIONAL { ?y p1+ ?z } }");
  auto got = exec.Run(q);
  ASSERT_TRUE(got.ok());
  sparql::Evaluator eval(store_, &dict_);
  auto want = eval.EvalQuery(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(Sorted(got.value()), Sorted(want.value()));
}

}  // namespace
}  // namespace rwdt::exec
