#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/automaton.h"
#include "regex/chain_algorithms.h"
#include "regex/glushkov.h"
#include "regex/parser.h"

namespace rwdt::regex {
namespace {

class ChainAlgoTest : public ::testing::Test {
 protected:
  ChainRegex Chain(const std::string& s) {
    auto r = ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    auto chain = ToChainRegex(r.value());
    EXPECT_TRUE(chain.has_value()) << s;
    return *chain;
  }

  RegexPtr Parse(const std::string& s) {
    auto r = ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }

  CompressedWord CW(const std::string& s) {
    Word w;
    for (char c : s) w.push_back(dict_.Intern(std::string(1, c)));
    return CompressedWord::FromWord(w);
  }

  Interner dict_;
};

TEST_F(ChainAlgoTest, CompressedWordBasics) {
  CompressedWord w = CW("aaabba");
  ASSERT_EQ(w.runs.size(), 3u);
  EXPECT_EQ(w.runs[0].second, 3u);
  EXPECT_EQ(w.runs[1].second, 2u);
  EXPECT_EQ(w.Length(), 6u);
}

TEST_F(ChainAlgoTest, CompressedMembershipSmallCases) {
  const ChainRegex c = Chain("a+ba*");
  EXPECT_TRUE(ChainMatchesCompressed(c, CW("ab")));
  EXPECT_TRUE(ChainMatchesCompressed(c, CW("aaaab")));
  EXPECT_TRUE(ChainMatchesCompressed(c, CW("abaaa")));
  EXPECT_FALSE(ChainMatchesCompressed(c, CW("b")));
  EXPECT_FALSE(ChainMatchesCompressed(c, CW("ab" "b")));
  EXPECT_FALSE(ChainMatchesCompressed(c, CW("")));
}

TEST_F(ChainAlgoTest, CompressedMembershipAgreesWithAutomata) {
  // Exhaustive cross-check against the NFA on all words up to length 7.
  const std::vector<std::string> exprs = {
      "a*abb*", "(a|b)*a(a|b)?", "a?a?b", "a+b+a+", "(a|b)?ab*",
      "aa?a?b*a", "b*", "ab", "a?b?a?b?"};
  for (const auto& s : exprs) {
    const ChainRegex chain = Chain(s);
    const Nfa nfa = ToNfa(Parse(s));
    const SymbolId a = dict_.Intern("a");
    const SymbolId b = dict_.Intern("b");
    for (uint32_t len = 0; len <= 7; ++len) {
      for (uint32_t bits = 0; bits < (1u << len); ++bits) {
        Word w;
        for (uint32_t i = 0; i < len; ++i) {
          w.push_back(((bits >> i) & 1) ? b : a);
        }
        EXPECT_EQ(ChainMatchesCompressed(chain, CompressedWord::FromWord(w)),
                  nfa.Accepts(w))
            << s << " on word of len " << len << " bits " << bits;
      }
    }
  }
}

TEST_F(ChainAlgoTest, CompressedMembershipHugeWord) {
  // a+b a* with a gigantic run count: must run in poly time in the
  // *description*, not the word length.
  const ChainRegex c = Chain("a+ba*");
  const SymbolId a = dict_.Intern("a");
  const SymbolId b = dict_.Intern("b");
  CompressedWord w;
  w.runs = {{a, 1ull << 60}, {b, 1}, {a, 1ull << 59}};
  EXPECT_TRUE(ChainMatchesCompressed(c, w));
  CompressedWord w2;
  w2.runs = {{b, 1}, {a, 1ull << 60}};
  EXPECT_FALSE(ChainMatchesCompressed(c, w2));
  // Exact-count chain vs huge run.
  const ChainRegex exact = Chain("aaa");
  CompressedWord w3;
  w3.runs = {{a, 1ull << 40}};
  EXPECT_FALSE(ChainMatchesCompressed(exact, w3));
}

TEST_F(ChainAlgoTest, UnaryRunNormalForm) {
  auto runs = ToUnaryRuns(Chain("aa+ba"));
  ASSERT_TRUE(runs.has_value());
  ASSERT_EQ(runs->size(), 3u);
  EXPECT_EQ((*runs)[0].min_count, 2u);
  EXPECT_TRUE((*runs)[0].unbounded);
  EXPECT_EQ((*runs)[1].min_count, 1u);
  EXPECT_FALSE((*runs)[1].unbounded);
}

TEST_F(ChainAlgoTest, UnaryRunRejectsVanishingRuns) {
  EXPECT_FALSE(ToUnaryRuns(Chain("a*b")).has_value());  // pure-star run
  EXPECT_FALSE(ToUnaryRuns(Chain("a?b")).has_value());  // optional factor
  EXPECT_TRUE(ToUnaryRuns(Chain("aa*b")).has_value());  // merged, min 1
}

TEST_F(ChainAlgoTest, UnaryRunContainmentMatchesAutomata) {
  const std::vector<std::string> exprs = {"ab+a", "a+b+a+", "aab+a",
                                          "a+ba",  "ab",    "aa*b+a"};
  for (const auto& s1 : exprs) {
    for (const auto& s2 : exprs) {
      auto fast = UnaryRunContainment(Chain(s1), Chain(s2));
      ASSERT_TRUE(fast.has_value()) << s1 << " vs " << s2;
      const bool slow = IsContained(ToDfa(Parse(s1)), ToDfa(Parse(s2)));
      EXPECT_EQ(*fast, slow) << s1 << " subseteq " << s2;
    }
  }
}

TEST_F(ChainAlgoTest, UnaryRunIntersectionMatchesAutomata) {
  const std::vector<std::vector<std::string>> instances = {
      {"ab+a", "a+b+a+"},      {"aab", "a+b"},       {"ab", "ba"},
      {"a+b+", "aab+", "a+bb"}, {"a+", "aa", "aaa"},  {"ab+a", "aba"},
  };
  for (const auto& inst : instances) {
    std::vector<ChainRegex> chains;
    std::vector<Nfa> nfas;
    for (const auto& s : inst) {
      chains.push_back(Chain(s));
      nfas.push_back(ToNfa(Parse(s)));
    }
    CompressedWord witness;
    auto fast = UnaryRunIntersection(chains, &witness);
    ASSERT_TRUE(fast.has_value());
    auto slow = IntersectionNonEmpty(nfas);
    ASSERT_TRUE(slow.has_value());
    EXPECT_EQ(*fast, *slow);
    if (*fast) {
      // The produced witness must be in every language.
      for (const auto& c : chains) {
        EXPECT_TRUE(ChainMatchesCompressed(c, witness));
      }
    }
  }
}

TEST_F(ChainAlgoTest, FixedLengthContainment) {
  auto r = FixedLengthContainment(Chain("a(b|c)d"), Chain("(a|b)(b|c|d)d"));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);
  r = FixedLengthContainment(Chain("(a|b)d"), Chain("ad"));
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
  r = FixedLengthContainment(Chain("ab"), Chain("abc"));
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);  // different lengths
  EXPECT_FALSE(FixedLengthContainment(Chain("ab*"), Chain("ab")).has_value());
}

TEST_F(ChainAlgoTest, FixedLengthIntersection) {
  auto r = FixedLengthIntersection({Chain("(a|b)c"), Chain("(b|d)c")});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);
  r = FixedLengthIntersection({Chain("ac"), Chain("bc")});
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
  r = FixedLengthIntersection({Chain("a"), Chain("ab")});
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
}

TEST_F(ChainAlgoTest, FastEquivalence) {
  // aa* == a+ == a*a ; the paper notes equivalence for RE(a,a*) is PTIME.
  auto r = FastChainEquivalence(Chain("aa*"), Chain("a+"));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);
  r = FastChainEquivalence(Chain("a*a"), Chain("aa*"));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);
  r = FastChainEquivalence(Chain("aa*b"), Chain("a+b+"));
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
}

TEST_F(ChainAlgoTest, DecideContainmentDispatch) {
  // RE(a,a+): unary-run algorithm.
  auto d = DecideContainment(Parse("ab+a"), Parse("a+b+a+"));
  EXPECT_EQ(d.algorithm, ContainmentAlgorithm::kUnaryRuns);
  EXPECT_TRUE(d.contained);
  // RE(a,(+a)): fixed-length algorithm.
  d = DecideContainment(Parse("a(b|c)"), Parse("(a|b)(b|c)"));
  EXPECT_EQ(d.algorithm, ContainmentAlgorithm::kFixedLength);
  EXPECT_TRUE(d.contained);
  // General expressions: automata.
  d = DecideContainment(Parse("(ab)*"), Parse("(a|b)*"));
  EXPECT_EQ(d.algorithm, ContainmentAlgorithm::kAutomata);
  EXPECT_TRUE(d.contained);
  // Chain with optional factors: automata fallback, correct result.
  d = DecideContainment(Parse("a?b"), Parse("a*b*"));
  EXPECT_EQ(d.algorithm, ContainmentAlgorithm::kAutomata);
  EXPECT_TRUE(d.contained);
  d = DecideContainment(Parse("a*b*"), Parse("a?b"));
  EXPECT_FALSE(d.contained);
}

}  // namespace
}  // namespace rwdt::regex
