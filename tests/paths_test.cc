#include <gtest/gtest.h>

#include "common/interner.h"
#include "graph/rdf.h"
#include "paths/analysis.h"
#include "paths/path.h"
#include "paths/semantics.h"

namespace rwdt::paths {
namespace {

class PathTest : public ::testing::Test {
 protected:
  PathPtr P(const std::string& s) {
    auto r = ParsePath(s, &dict_);
    EXPECT_TRUE(r.ok()) << s << ": " << r.status().ToString();
    return r.value();
  }
  Interner dict_;
};

TEST_F(PathTest, ParsesWikidataShapes) {
  // The paper's running example: wdt:P31/wdt:P279*.
  PathPtr p = P("wdt:P31/wdt:P279*");
  ASSERT_EQ(p->op(), PathOp::kSeq);
  EXPECT_EQ(p->children().size(), 2u);
  EXPECT_EQ(p->children()[1]->op(), PathOp::kStar);
  EXPECT_TRUE(p->IsTransitive());
  EXPECT_FALSE(p->UsesInverse());
}

TEST_F(PathTest, ParsesOperators) {
  EXPECT_EQ(P("^a")->op(), PathOp::kInverse);
  EXPECT_EQ(P("a|b|c")->children().size(), 3u);
  EXPECT_EQ(P("(a/b)+")->op(), PathOp::kPlus);
  EXPECT_EQ(P("!a")->op(), PathOp::kNegated);
  auto nps = P("!(a|^b)");
  ASSERT_EQ(nps->negated_set().size(), 2u);
  EXPECT_TRUE(nps->negated_set()[1].second);
  EXPECT_TRUE(nps->UsesInverse());
  EXPECT_EQ(P("<http://x.org/p>")->op(), PathOp::kIri);
}

TEST_F(PathTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParsePath("", &dict_).ok());
  EXPECT_FALSE(ParsePath("a/", &dict_).ok());
  EXPECT_FALSE(ParsePath("(a", &dict_).ok());
  EXPECT_FALSE(ParsePath("a)", &dict_).ok());
}

TEST_F(PathTest, ToStringRoundTrips) {
  for (const std::string s :
       {"a", "a/b*", "(a|b)+", "^a/b", "!(a|^b)", "a?/b"}) {
    PathPtr p1 = P(s);
    PathPtr p2 = P(p1->ToString(dict_));
    EXPECT_EQ(p1->ToString(dict_), p2->ToString(dict_)) << s;
  }
}

TEST_F(PathTest, CanonicalTypeStrings) {
  EXPECT_EQ(CanonicalTypeString(*P("wdt:P31*")), "a*");
  EXPECT_EQ(CanonicalTypeString(*P("wdt:P31*/wdt:P279*")), "a*b*");
  // The paper: wdt:P31/wdt:P31*/wdt:P279* has type aa*b*.
  EXPECT_EQ(CanonicalTypeString(*P("wdt:P31/wdt:P31*/wdt:P279*")),
            "aa*b*");
  // Reverse aggregation: a*b is canonicalized with ab* (min of the two).
  EXPECT_EQ(CanonicalTypeString(*P("a*/b")),
            CanonicalTypeString(*P("b/a*")));
}

TEST_F(PathTest, Table8Classification) {
  EXPECT_EQ(ClassifyTable8(*P("a*")), Table8Type::kAStar);
  EXPECT_EQ(ClassifyTable8(*P("a+")), Table8Type::kABStarOrAPlus);
  EXPECT_EQ(ClassifyTable8(*P("a/b*")), Table8Type::kABStarOrAPlus);
  EXPECT_EQ(ClassifyTable8(*P("a*/b")), Table8Type::kABStarOrAPlus);
  EXPECT_EQ(ClassifyTable8(*P("a/b*/c*")), Table8Type::kABStarCStar);
  EXPECT_EQ(ClassifyTable8(*P("(a|b)*")), Table8Type::kDisjStar);
  EXPECT_EQ(ClassifyTable8(*P("!a*")), Table8Type::kDisjStar);
  EXPECT_EQ(ClassifyTable8(*P("a/b*/c")), Table8Type::kABStarC);
  EXPECT_EQ(ClassifyTable8(*P("a*/b*")), Table8Type::kAStarBStar);
  EXPECT_EQ(ClassifyTable8(*P("a/b/c*")), Table8Type::kABCStar);
  EXPECT_EQ(ClassifyTable8(*P("a?/b*")), Table8Type::kAOptBStar);
  EXPECT_EQ(ClassifyTable8(*P("(a|b)+")), Table8Type::kDisjPlus);
  EXPECT_EQ(ClassifyTable8(*P("(a|b)/c*")), Table8Type::kDisjBStar);
  EXPECT_EQ(ClassifyTable8(*P("a/b/c/d")), Table8Type::kWord);
  EXPECT_EQ(ClassifyTable8(*P("a")), Table8Type::kWord);
  EXPECT_EQ(ClassifyTable8(*P("a|b")), Table8Type::kDisj);
  EXPECT_EQ(ClassifyTable8(*P("(a|b)?")), Table8Type::kDisjOpt);
  EXPECT_EQ(ClassifyTable8(*P("a/b?/c?")), Table8Type::kWordOptTail);
  EXPECT_EQ(ClassifyTable8(*P("^a")), Table8Type::kInverse);
  EXPECT_EQ(ClassifyTable8(*P("a/b/c?")), Table8Type::kABCOpt);
  EXPECT_EQ(ClassifyTable8(*P("a*/b*/c*")), Table8Type::kOtherTransitive);
  EXPECT_EQ(ClassifyTable8(*P("(a/b)+")), Table8Type::kOtherTransitive);
  EXPECT_EQ(ClassifyTable8(*P("(a|b/c)")),
            Table8Type::kOtherNonTransitive);
}

TEST_F(PathTest, SimpleTransitiveExpressions) {
  // One transitive factor: STE.
  EXPECT_TRUE(IsSimpleTransitiveExpression(*P("a*")));
  EXPECT_TRUE(IsSimpleTransitiveExpression(*P("a/b*/c")));
  EXPECT_TRUE(IsSimpleTransitiveExpression(*P("(a|b)/c+")));
  EXPECT_TRUE(IsSimpleTransitiveExpression(*P("a/b/c")));
  EXPECT_TRUE(IsSimpleTransitiveExpression(*P("a?/b*")));
  // a*b* is the paper's canonical non-STE (two stars).
  EXPECT_FALSE(IsSimpleTransitiveExpression(*P("a*/b*")));
  EXPECT_FALSE(IsSimpleTransitiveExpression(*P("a/b*/c*")));
  // Nested structure is not simple.
  EXPECT_FALSE(IsSimpleTransitiveExpression(*P("(a/b)+")));
}

TEST_F(PathTest, TractabilityCertificates) {
  EXPECT_TRUE(CertifiedInCtract(*P("a/b/c")));     // finite
  EXPECT_TRUE(CertifiedInCtract(*P("a/b*")));      // STE
  EXPECT_FALSE(CertifiedInCtract(*P("a*/b*")));    // not certified
  EXPECT_TRUE(CertifiedInTtract(*P("(a|b)*")));
}

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Diamond with a shortcut:
    //   s -a-> m1 -a-> t ; s -a-> m2 -a-> t ; t -a-> s (cycle)
    Add("s", "a", "m1");
    Add("m1", "a", "t");
    Add("s", "a", "m2");
    Add("m2", "a", "t");
    Add("t", "a", "s");
    Add("s", "b", "t");
  }
  void Add(const std::string& s, const std::string& p,
           const std::string& o) {
    store_.Add(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
  }
  PathPtr P(const std::string& s) {
    auto r = ParsePath(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }
  SymbolId S(const std::string& s) { return dict_.Intern(s); }

  Interner dict_;
  graph::TripleStore store_;
};

TEST_F(SemanticsTest, WalkSemanticsFindsPaths) {
  auto r = MatchPath(store_, *P("a/a"), S("s"), S("t"),
                     PathSemantics::kWalk);
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.matched);
  r = MatchPath(store_, *P("b/b"), S("s"), S("t"), PathSemantics::kWalk);
  EXPECT_FALSE(r.matched);
  // a* from s reaches everything through the cycle.
  r = MatchPath(store_, *P("a*"), S("m1"), S("m2"), PathSemantics::kWalk);
  EXPECT_TRUE(r.matched);  // m1 -> t -> s -> m2
  // Zero-length star.
  r = MatchPath(store_, *P("a*"), S("s"), S("s"), PathSemantics::kWalk);
  EXPECT_TRUE(r.matched);
}

TEST_F(SemanticsTest, SimplePathVsWalk) {
  // Walk a^4 from s to s exists (s->m1->t->s needs 3)... length-4 walks
  // can revisit nodes; a simple path cannot return to s.
  auto walk = MatchPath(store_, *P("a/a/a/a"), S("s"), S("m2"),
                        PathSemantics::kWalk);
  EXPECT_TRUE(walk.matched);  // s m1 t s m2 revisits s
  auto simple = MatchPath(store_, *P("a/a/a/a"), S("s"), S("m2"),
                          PathSemantics::kSimplePath);
  EXPECT_TRUE(simple.decided);
  EXPECT_FALSE(simple.matched);
}

TEST_F(SemanticsTest, TrailAllowsNodeRevisit) {
  // s m1 t s m2: revisits node s but uses distinct edges -> a trail.
  auto trail = MatchPath(store_, *P("a/a/a/a"), S("s"), S("m2"),
                         PathSemantics::kTrail);
  EXPECT_TRUE(trail.decided);
  EXPECT_TRUE(trail.matched);
  // Reusing the same edge is forbidden: a^6 from s to t... check a
  // query that needs edge reuse: s -b-> t -?-> impossible b/b.
  auto no = MatchPath(store_, *P("b/^b/b"), S("s"), S("t"),
                      PathSemantics::kTrail);
  EXPECT_TRUE(no.decided);
  EXPECT_FALSE(no.matched);
  auto yes = MatchPath(store_, *P("b/^b/b"), S("s"), S("t"),
                       PathSemantics::kWalk);
  EXPECT_TRUE(yes.matched);
}

TEST_F(SemanticsTest, InverseAndNegatedMoves) {
  auto r = MatchPath(store_, *P("^a"), S("m1"), S("s"),
                     PathSemantics::kWalk);
  EXPECT_TRUE(r.matched);
  r = MatchPath(store_, *P("!a"), S("s"), S("t"), PathSemantics::kWalk);
  EXPECT_TRUE(r.matched);  // the b edge
  r = MatchPath(store_, *P("!(a|b)"), S("s"), S("t"),
                PathSemantics::kWalk);
  EXPECT_FALSE(r.matched);
}

}  // namespace
}  // namespace rwdt::paths
