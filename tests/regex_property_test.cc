#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/automaton.h"
#include "regex/bkw.h"
#include "regex/chain_algorithms.h"
#include "regex/fragments.h"
#include "regex/glushkov.h"
#include "regex/sampler.h"

namespace rwdt::regex {
namespace {

/// Property sweep over random expressions, parameterized by seed so each
/// instantiation explores an independent slice of the space.
class RegexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegexPropertyTest, NfaDfaMinimalDfaAgreeOnMembership) {
  Rng rng(GetParam());
  RegexSamplerOptions opt;
  for (int round = 0; round < 20; ++round) {
    RegexPtr e = SampleRegex(opt, rng);
    const Nfa nfa = ToNfa(e);
    const Dfa dfa = Determinize(nfa);
    const Dfa min = Minimize(dfa);
    for (int w = 0; w < 25; ++w) {
      const Word word = SampleWord(opt.alphabet_size, 8, rng);
      const bool in_nfa = nfa.Accepts(word);
      EXPECT_EQ(in_nfa, dfa.Accepts(word));
      EXPECT_EQ(in_nfa, min.Accepts(word));
    }
  }
}

TEST_P(RegexPropertyTest, SampledWordsAreAccepted) {
  Rng rng(GetParam() + 1000);
  RegexSamplerOptions opt;
  for (int round = 0; round < 25; ++round) {
    RegexPtr e = SampleRegex(opt, rng);
    const Nfa nfa = ToNfa(e);
    Word w;
    if (SampleAcceptedWord(nfa, 20, rng, &w)) {
      EXPECT_TRUE(nfa.Accepts(w));
      EXPECT_TRUE(ToDfa(e).Accepts(w));
    }
  }
}

TEST_P(RegexPropertyTest, MinimizationIsIdempotentAndEquivalent) {
  Rng rng(GetParam() + 2000);
  RegexSamplerOptions opt;
  for (int round = 0; round < 15; ++round) {
    RegexPtr e = SampleRegex(opt, rng);
    const Dfa dfa = ToDfa(e);
    const Dfa min1 = Minimize(dfa);
    const Dfa min2 = Minimize(min1);
    EXPECT_EQ(min1.NumStates(), min2.NumStates());
    EXPECT_TRUE(AreEquivalent(dfa, min1));
  }
}

TEST_P(RegexPropertyTest, ContainmentIsReflexiveAndConsistent) {
  Rng rng(GetParam() + 3000);
  RegexSamplerOptions opt;
  opt.max_depth = 3;
  for (int round = 0; round < 12; ++round) {
    RegexPtr e1 = SampleRegex(opt, rng);
    RegexPtr e2 = SampleRegex(opt, rng);
    const Dfa d1 = ToDfa(e1);
    const Dfa d2 = ToDfa(e2);
    EXPECT_TRUE(IsContained(d1, d1));
    const bool c12 = IsContained(d1, d2);
    const bool c21 = IsContained(d2, d1);
    EXPECT_EQ(c12 && c21, AreEquivalent(d1, d2));
    // Union always contains both sides.
    const Dfa u = Product(d1, d2, /*intersect=*/false);
    EXPECT_TRUE(IsContained(d1, u));
    EXPECT_TRUE(IsContained(d2, u));
    // Intersection is contained in both sides.
    const Dfa inter = Product(d1, d2, /*intersect=*/true);
    EXPECT_TRUE(IsContained(inter, d1));
    EXPECT_TRUE(IsContained(inter, d2));
  }
}

TEST_P(RegexPropertyTest, DeterministicExpressionsHaveDefinableLanguages) {
  Rng rng(GetParam() + 4000);
  RegexSamplerOptions opt;
  opt.max_depth = 3;
  int checked = 0;
  for (int round = 0; round < 60 && checked < 15; ++round) {
    RegexPtr e = SampleRegex(opt, rng);
    if (!IsDeterministic(e)) continue;
    ++checked;
    EXPECT_TRUE(IsDreDefinable(e)) << "one-unambiguous expression whose "
                                      "language failed the BKW test";
  }
  EXPECT_GT(checked, 0);
}

/// Random chain expressions: specialized algorithms agree with automata.
class ChainPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static ChainRegex SampleChain(Rng& rng, size_t alphabet, size_t max_len,
                                bool unary_only) {
    ChainRegex chain;
    const size_t len = rng.NextBelow(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      SimpleFactor f;
      const size_t width =
          unary_only ? 1 : 1 + rng.NextBelow(2);  // 1 or 2 symbols
      std::set<SymbolId> syms;
      while (syms.size() < width) {
        syms.insert(static_cast<SymbolId>(rng.NextBelow(alphabet)));
      }
      f.symbols.assign(syms.begin(), syms.end());
      switch (rng.NextBelow(4)) {
        case 0:
          f.modifier = FactorModifier::kOnce;
          break;
        case 1:
          f.modifier = FactorModifier::kOptional;
          break;
        case 2:
          f.modifier = FactorModifier::kStar;
          break;
        default:
          f.modifier = FactorModifier::kPlus;
          break;
      }
      chain.factors.push_back(std::move(f));
    }
    return chain;
  }
};

TEST_P(ChainPropertyTest, CompressedMembershipAgreesWithNfa) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const ChainRegex chain = SampleChain(rng, 3, 6, /*unary_only=*/false);
    const Nfa nfa = ToNfa(chain.ToRegex());
    for (int w = 0; w < 30; ++w) {
      const Word word = SampleWord(3, 9, rng);
      EXPECT_EQ(ChainMatchesCompressed(chain, CompressedWord::FromWord(word)),
                nfa.Accepts(word));
    }
  }
}

TEST_P(ChainPropertyTest, UnaryRunContainmentAgreesWithAutomata) {
  Rng rng(GetParam() + 77);
  int decided = 0;
  for (int round = 0; round < 60 && decided < 20; ++round) {
    ChainRegex c1 = SampleChain(rng, 2, 5, /*unary_only=*/true);
    ChainRegex c2 = SampleChain(rng, 2, 5, /*unary_only=*/true);
    auto fast = UnaryRunContainment(c1, c2);
    if (!fast.has_value()) continue;
    ++decided;
    const bool slow =
        IsContained(ToDfa(c1.ToRegex()), ToDfa(c2.ToRegex()));
    EXPECT_EQ(*fast, slow);
  }
  EXPECT_GT(decided, 0);
}

TEST_P(ChainPropertyTest, FastEquivalenceAgreesWithAutomata) {
  Rng rng(GetParam() + 99);
  int decided = 0;
  for (int round = 0; round < 80 && decided < 20; ++round) {
    ChainRegex c1 = SampleChain(rng, 2, 5, /*unary_only=*/true);
    ChainRegex c2 = SampleChain(rng, 2, 5, /*unary_only=*/true);
    auto fast = FastChainEquivalence(c1, c2);
    if (!fast.has_value()) continue;
    ++decided;
    const bool slow =
        AreEquivalent(ToDfa(c1.ToRegex()), ToDfa(c2.ToRegex()));
    EXPECT_EQ(*fast, slow);
  }
  EXPECT_GT(decided, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
INSTANTIATE_TEST_SUITE_P(Seeds, ChainPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace rwdt::regex
