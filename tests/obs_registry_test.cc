// Tests for the obs metric registry, the OpenMetrics exposition writer,
// and the engine -> registry bridge.

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/metrics.h"
#include "obs/engine_bridge.h"
#include "obs/log.h"
#include "obs/openmetrics.h"
#include "obs/registry.h"

namespace rwdt::obs {
namespace {

/// Silences the expected-misuse ERROR logs for one test body.
class QuietLogs {
 public:
  QuietLogs() { Logger::Global().set_min_level(LogLevel::kOff); }
  ~QuietLogs() { Logger::Global().ResetToDefault(); }
};

TEST(RegistryTest, CounterConcurrencyIsExact) {
  MetricRegistry registry;
  Counter* shared = registry.GetCounter("test_shared", "shared counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  std::vector<Counter*> mine(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    mine[t] = registry.GetCounter("test_labeled", "per-thread counter",
                                  {{"thread", std::to_string(t)}});
  }
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shared->Increment();
        mine[t]->Increment(2);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(shared->value(), kThreads * kPerThread);
  uint64_t labeled_total = 0;
  for (int t = 0; t < kThreads; ++t) labeled_total += mine[t]->value();
  EXPECT_EQ(labeled_total, kThreads * kPerThread * 2);
}

TEST(RegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("test_c", "help", {{"k", "v"}});
  Counter* b = registry.GetCounter("test_c", "other help", {{"k", "v"}});
  EXPECT_EQ(a, b);
  // Label order must not matter.
  Gauge* g1 = registry.GetGauge("test_g", "h", {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = registry.GetGauge("test_g", "h", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(g1, g2);
  // Different label values are different children.
  EXPECT_NE(a, registry.GetCounter("test_c", "help", {{"k", "w"}}));
}

TEST(RegistryTest, MisuseReturnsDummyNotCrash) {
  QuietLogs quiet;
  MetricRegistry registry;
  Counter* c = registry.GetCounter("test_dup", "first");
  // Same name, different type -> dummy, original untouched.
  Gauge* g = registry.GetGauge("test_dup", "second");
  g->Set(99);
  c->Increment(5);
  EXPECT_EQ(c->value(), 5u);
  // Invalid names and labels also yield usable dummies.
  registry.GetCounter("0bad", "starts with digit")->Increment();
  registry.GetCounter("test_badlabel", "h", {{"le", "1"}})->Increment();
  registry.GetCounter("", "empty")->Increment();

  const std::string text = WriteOpenMetrics(registry.Collect());
  EXPECT_NE(text.find("test_dup_total 5\n"), std::string::npos);
  EXPECT_EQ(text.find("0bad"), std::string::npos);
  EXPECT_EQ(text.find("test_badlabel"), std::string::npos);
}

TEST(RegistryTest, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("test_gauge", "h");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  g->Add(2.25);
  EXPECT_DOUBLE_EQ(g->value(), 3.75);
  g->Add(-4.0);
  EXPECT_DOUBLE_EQ(g->value(), -0.25);
}

TEST(RegistryTest, HistogramBucketsAndSum) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("test_hist", "h", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // le=1
  h->Observe(1.0);    // le=1 (inclusive)
  h->Observe(7.0);    // le=10
  h->Observe(100.0);  // le=100 (inclusive)
  h->Observe(5000.0); // +Inf
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->bucket_count(3), 1u);  // +Inf overflow bucket
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 7.0 + 100.0 + 5000.0);
}

TEST(RegistryTest, ExponentialBounds) {
  const std::vector<double> bounds = Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(OpenMetricsTest, GoldenExposition) {
  MetricRegistry registry;
  registry.GetCounter("zz_requests", "Requests served.", {{"route", "/metrics"}})
      ->Increment(3);
  registry.GetGauge("aa_temp", "Temperature.")->Set(21.5);
  Histogram* h = registry.GetHistogram("mm_lat", "Latency.", {1.0, 2.0});
  h->Observe(1.0);
  h->Observe(1.5);
  h->Observe(9.0);

  // Families sorted by name; histogram buckets cumulative; # EOF last.
  const std::string expected =
      "# HELP aa_temp Temperature.\n"
      "# TYPE aa_temp gauge\n"
      "aa_temp 21.5\n"
      "# HELP mm_lat Latency.\n"
      "# TYPE mm_lat histogram\n"
      "mm_lat_bucket{le=\"1\"} 1\n"
      "mm_lat_bucket{le=\"2\"} 2\n"
      "mm_lat_bucket{le=\"+Inf\"} 3\n"
      "mm_lat_sum 11.5\n"
      "mm_lat_count 3\n"
      "# HELP zz_requests Requests served.\n"
      "# TYPE zz_requests counter\n"
      "zz_requests_total{route=\"/metrics\"} 3\n"
      "# EOF\n";
  EXPECT_EQ(WriteOpenMetrics(registry.Collect()), expected);
}

TEST(OpenMetricsTest, LabelValueEscaping) {
  MetricRegistry registry;
  registry
      .GetCounter("test_esc", "h",
                  {{"path", "a\\b\"c\nd"}})
      ->Increment();
  const std::string text = WriteOpenMetrics(registry.Collect());
  EXPECT_NE(text.find("test_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
}

TEST(OpenMetricsTest, ValueFormatting) {
  EXPECT_EQ(FormatOpenMetricsValue(0), "0");
  EXPECT_EQ(FormatOpenMetricsValue(200000), "200000");
  EXPECT_EQ(FormatOpenMetricsValue(-3), "-3");
  EXPECT_EQ(FormatOpenMetricsValue(0.25), "0.25");
  EXPECT_EQ(FormatOpenMetricsValue(
                std::numeric_limits<double>::infinity()),
            "+Inf");
}

TEST(RegistryTest, HistogramExemplarsStoredPerBucket) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("test_ex", "h", {1.0, 10.0});
  EXPECT_FALSE(h->exemplar(0).set);  // nothing recorded yet
  h->ObserveWithExemplar(0.5, {{"trace_id", "aaaa"}});
  h->ObserveWithExemplar(7.0, {{"trace_id", "bbbb"}});
  h->ObserveWithExemplar(99.0, {{"trace_id", "cccc"}});  // +Inf bucket
  ASSERT_TRUE(h->exemplar(0).set);
  EXPECT_DOUBLE_EQ(h->exemplar(0).value, 0.5);
  EXPECT_EQ(h->exemplar(0).labels[0].second, "aaaa");
  EXPECT_DOUBLE_EQ(h->exemplar(1).value, 7.0);
  EXPECT_DOUBLE_EQ(h->exemplar(2).value, 99.0);
  // A later observation in the same bucket replaces the exemplar (most
  // recent wins — that is what a debugger wants to click on).
  h->ObserveWithExemplar(0.25, {{"trace_id", "dddd"}});
  EXPECT_EQ(h->exemplar(0).labels[0].second, "dddd");
  // Counts and sum are identical to plain Observe.
  EXPECT_EQ(h->count(), 4u);
  // Out-of-range index is a harmless empty exemplar.
  EXPECT_FALSE(h->exemplar(99).set);
}

TEST(OpenMetricsTest, ExemplarsRenderOnBucketSamplesOnly) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("test_exm", "h", {1.0});
  h->ObserveWithExemplar(0.5, {{"trace_id", "0123456789abcdef"}});
  h->Observe(3.0);  // +Inf bucket: no exemplar
  const std::string text = WriteOpenMetrics(registry.Collect());
  // The exemplar rides the matching bucket line after ` # `.
  EXPECT_NE(
      text.find("test_exm_bucket{le=\"1\"} 1 "
                "# {trace_id=\"0123456789abcdef\"} 0.5\n"),
      std::string::npos)
      << text;
  // Bucket without an exemplar, and _sum/_count, stay bare.
  EXPECT_NE(text.find("test_exm_bucket{le=\"+Inf\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_exm_sum 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("test_exm_count 2\n"), std::string::npos);
}

TEST(OpenMetricsTest, MergeFamiliesConcatenatesSameName) {
  std::vector<FamilySnapshot> families;
  FamilySnapshot a;
  a.name = "test_m";
  a.type = MetricType::kCounter;
  a.help = "h";
  a.samples.push_back({"_total", {{"src", "a"}}, 1});
  FamilySnapshot b = a;
  b.samples = {{"_total", {{"src", "b"}}, 2}};
  families.push_back(a);
  families.push_back(b);
  const auto merged = MergeFamilies(std::move(families));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].samples.size(), 2u);
}

TEST(OpenMetricsTest, CollectorRunsAtScrapeAndScopedRemoval) {
  MetricRegistry registry;
  int calls = 0;
  {
    ScopedCollector handle(
        &registry, registry.AddCollector([&](std::vector<FamilySnapshot>* out) {
          ++calls;
          FamilySnapshot f;
          f.name = "test_from_collector";
          f.type = MetricType::kGauge;
          f.samples.push_back({"", {}, 7});
          out->push_back(std::move(f));
        }));
    EXPECT_EQ(calls, 0);  // pull-model: nothing until a scrape
    const std::string text = registry.RenderOpenMetrics();
    EXPECT_EQ(calls, 1);
    EXPECT_NE(text.find("test_from_collector 7\n"), std::string::npos);
  }
  registry.RenderOpenMetrics();
  EXPECT_EQ(calls, 1);  // removed with the handle
}

TEST(BridgeTest, FamiliesAgreeWithSnapshot) {
  engine::MetricsSnapshot snap;
  snap.entries_processed = 1000;
  snap.queries_analyzed = 600;
  snap.parse_failures = 40;
  snap.errors[static_cast<size_t>(ErrorClass::kParseError)] = 40;
  snap.cache_hits = 300;
  snap.cache_misses = 600;
  snap.wall_ns = 2'000'000'000;
  snap.threads = 4;
  auto& parse = snap.stages[static_cast<size_t>(engine::Stage::kParse)];
  parse.count = 3;
  parse.total_ns = 1 + 3 + 9;
  parse.buckets[1] = 1;  // 1 ns
  parse.buckets[2] = 1;  // 2-3 ns
  parse.buckets[4] = 1;  // 8-15 ns

  std::vector<FamilySnapshot> families;
  AppendEngineFamilies(snap, /*queue_depth=*/5, {{"engine", "0"}}, &families);
  const std::string text = WriteOpenMetrics(MergeFamilies(std::move(families)));

  EXPECT_NE(text.find("rwdt_engine_entries_total{engine=\"0\"} 1000\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("rwdt_engine_queries_analyzed_total{engine=\"0\"} 600\n"),
      std::string::npos);
  EXPECT_NE(text.find(
                "rwdt_engine_errors_total{class=\"parse_error\",engine=\"0\"}"
                " 40\n"),
            std::string::npos);
  EXPECT_NE(text.find("rwdt_engine_cache_hits_total{engine=\"0\"} 300\n"),
            std::string::npos);
  EXPECT_NE(text.find("rwdt_engine_cache_hit_ratio{engine=\"0\"} "),
            std::string::npos);
  EXPECT_NE(text.find("rwdt_engine_queue_depth{engine=\"0\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("rwdt_engine_wall_seconds_total{engine=\"0\"} 2\n"),
            std::string::npos);

  // Histogram: bucket b holds samples with bit_width(ns) == b, exposed
  // with exact inclusive bounds 2^b - 1, cumulative in the exposition
  // (`le` is always the last label on a bucket sample).
  EXPECT_NE(
      text.find(
          "rwdt_engine_stage_latency_ns_bucket{engine=\"0\","
          "stage=\"parse\",le=\"1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "rwdt_engine_stage_latency_ns_bucket{engine=\"0\","
          "stage=\"parse\",le=\"3\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "rwdt_engine_stage_latency_ns_bucket{engine=\"0\","
          "stage=\"parse\",le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("rwdt_engine_stage_latency_ns_count{engine=\"0\","
                      "stage=\"parse\"} 3\n"),
            std::string::npos);
}

TEST(BridgeTest, ComputeEngineTickRates) {
  engine::MetricsSnapshot snap;
  snap.entries_processed = 1500;
  snap.cache_hits = 75;
  snap.cache_misses = 25;
  const EngineTick tick = ComputeEngineTick(snap, /*prev_entries=*/500,
                                            /*interval_s=*/2.0);
  EXPECT_EQ(tick.entries, 1500u);
  EXPECT_DOUBLE_EQ(tick.entries_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(tick.cache_hit_rate, 0.75);
  // Degenerate interval never divides by zero.
  EXPECT_DOUBLE_EQ(ComputeEngineTick(snap, 0, 0).entries_per_sec, 0.0);
}

TEST(BridgeTest, LiveEngineScrapeAgreesWithSnapshot) {
  engine::EngineOptions opts;
  opts.threads = 2;
  engine::Engine eng(opts);

  MetricRegistry registry;
  ScopedCollector handle =
      RegisterEngineMetrics(&registry, &eng, {{"engine", "t"}});

  loggen::SourceProfile profile = loggen::ExampleProfile(2000);
  profile.name = "bridge-test";
  eng.AnalyzeLog(profile, 7);

  const engine::MetricsSnapshot snap = eng.Snapshot();
  const std::string text = registry.RenderOpenMetrics();
  auto expect_line = [&](const std::string& line) {
    EXPECT_NE(text.find(line), std::string::npos)
        << "missing: " << line << "\nin:\n"
        << text;
  };
  expect_line("rwdt_engine_entries_total{engine=\"t\"} " +
              std::to_string(snap.entries_processed) + "\n");
  expect_line("rwdt_engine_queries_analyzed_total{engine=\"t\"} " +
              std::to_string(snap.queries_analyzed) + "\n");
  expect_line("rwdt_engine_cache_hits_total{engine=\"t\"} " +
              std::to_string(snap.cache_hits) + "\n");
  expect_line("rwdt_engine_threads{engine=\"t\"} 2\n");
}

}  // namespace
}  // namespace rwdt::obs
