// Differential property test for rwdt::exec: over random RDF graphs and
// random generated SPARQL queries, the classifier-dispatched executor
// produces exactly the reference evaluator's bag of solutions. This is
// the repo's strongest guarantee that the "fast path picked by the
// verdict" can never change query semantics; it runs in the TSan CI set.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "exec/planner.h"
#include "graph/generators.h"
#include "loggen/sparql_gen.h"
#include "sparql/eval.h"
#include "sparql/parser.h"

namespace rwdt::exec {
namespace {

using sparql::Binding;

std::vector<Binding> Sorted(std::vector<Binding> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class ExecDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    store_ = graph::MakeRdfDataset(100, 3, 3, &dict_, rng);
    // The generator draws predicates from p0..p59; overlay a graph on a
    // low-index slice of them so generated scans are non-vacuous.
    for (int i = 0; i < 180; ++i) {
      store_.Add(dict_.Intern("ent:" + std::to_string(rng.NextBelow(35))),
                 dict_.Intern("p" + std::to_string(rng.NextBelow(8))),
                 dict_.Intern("ent:" + std::to_string(rng.NextBelow(35))));
    }
  }

  Interner dict_;
  graph::TripleStore store_;
};

TEST_P(ExecDifferentialTest, ExecutorAgreesWithEvaluatorOnGeneratedLogs) {
  loggen::SourceProfile profile = loggen::ExampleProfile(400);
  profile.invalid_rate = 0;
  // Bound query sizes so evaluation over the dense test store stays
  // small (this test also runs under TSan), and boost the features the
  // executor specializes: property paths and OPTIONAL.
  profile.triple_count_weights = {5, 40, 25, 15, 10, 3, 2, 0, 0, 0, 0, 0};
  profile.p_path = 0.15;
  profile.p_optional = 0.45;

  Executor exec(store_, &dict_);
  sparql::Evaluator eval(store_, &dict_);
  size_t compared = 0, fast_path = 0, nonempty = 0;
  for (const auto& entry : loggen::GenerateLog(profile, GetParam())) {
    auto parsed = sparql::ParseSparql(entry.text, &dict_);
    ASSERT_TRUE(parsed.ok()) << entry.text;
    sparql::Query q = std::move(parsed.value());
    // LIMIT/OFFSET without a total ORDER BY slices an unspecified row
    // order; drop them so bag equality is well-defined. Everything else
    // in the modifier pipeline is order-insensitive up to multiset.
    q.modifiers.limit.reset();
    q.modifiers.offset.reset();

    auto plan = exec.MakePlan(q);
    ASSERT_TRUE(plan.ok()) << entry.text;
    auto got = exec.Execute(plan.value());
    auto want = eval.EvalQuery(q);
    ASSERT_EQ(got.ok(), want.ok())
        << entry.text << "\nstrategy: "
        << StrategyName(plan.value().strategy) << "\ngot: "
        << (got.ok() ? "ok" : got.status().ToString()) << "\nwant: "
        << (want.ok() ? "ok" : want.status().ToString());
    if (!got.ok()) continue;
    EXPECT_EQ(Sorted(got.value()), Sorted(want.value()))
        << entry.text
        << "\nstrategy: " << StrategyName(plan.value().strategy)
        << "\nreason: " << plan.value().reason;
    ++compared;
    if (plan.value().strategy != Strategy::kFallback) ++fast_path;
    if (!got.value().empty()) ++nonempty;
  }
  // Non-vacuity: the sweep must actually exercise the fast paths and
  // produce solutions, not just compare empty bags of fallback plans.
  EXPECT_GT(compared, 100u);
  EXPECT_GT(fast_path, 20u);
  EXPECT_GT(nonempty, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecDifferentialTest,
                         ::testing::Values(3, 11, 29));

}  // namespace
}  // namespace rwdt::exec
