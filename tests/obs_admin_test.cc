// Loopback tests for the embedded admin HTTP server: every built-in
// route, error handling, and graceful shutdown with a request in
// flight.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "engine/engine.h"
#include "obs/admin_server.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tree/json.h"

namespace rwdt::obs {
namespace {

struct HttpResult {
  int status = 0;
  std::string body;
  std::string raw;
};

/// Minimal blocking HTTP/1.1 GET over a raw loopback socket — the tests
/// deliberately avoid any client library so they exercise exactly the
/// bytes a curl or Prometheus scrape would send.
HttpResult HttpGet(uint16_t port, const std::string& path,
                   const std::string& method = "GET") {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  const std::string request =
      method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  char buf[4096];
  for (;;) {  // Connection: close — read until EOF
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    result.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (result.raw.compare(0, 9, "HTTP/1.1 ") == 0) {
    result.status = std::atoi(result.raw.c_str() + 9);
  }
  const size_t split = result.raw.find("\r\n\r\n");
  if (split != std::string::npos) result.body = result.raw.substr(split + 4);
  return result;
}

TEST(AdminServerTest, RoutesAndErrors) {
  AdminServer::Options opts;  // port 0 = ephemeral
  AdminServer server(opts);
  server.Handle("/hello", "greeting", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "hi " + req.query;
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  EXPECT_EQ(HttpGet(server.port(), "/hello?who=tests").body, "hi who=tests");
  EXPECT_EQ(HttpGet(server.port(), "/nope").status, 404);
  EXPECT_EQ(HttpGet(server.port(), "/hello", "POST").status, 405);
  // The index page lists registered routes with their help strings.
  const HttpResult index = HttpGet(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/hello"), std::string::npos);
  EXPECT_NE(index.body.find("greeting"), std::string::npos);
  // Stop() joins the handler pool, so the served count is final here;
  // asserting before Stop() races the post-response counter increment.
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.requests_served(), 4u);
}

TEST(AdminServerTest, GracefulStopDrainsInFlightRequest) {
  std::atomic<bool> entered{false};
  AdminServer::Options opts;
  AdminServer server(opts);
  server.Handle("/slow", "sleeps", [&](const HttpRequest&) {
    entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    HttpResponse resp;
    resp.body = "slow done";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  HttpResult result;
  std::thread client(
      [&] { result = HttpGet(server.port(), "/slow"); });
  while (!entered.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.Stop();  // must wait for the in-flight handler, not kill it
  client.join();
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "slow done");
}

TEST(AdminServerTest, QuitQuitQuitReleasesWaiter) {
  AdminServer server(AdminServer::Options{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.WaitForQuit(/*timeout_ms=*/10));  // times out quietly
  std::thread quitter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    HttpGet(server.port(), "/quitquitquit");
  });
  EXPECT_TRUE(server.WaitForQuit(/*timeout_ms=*/5000));
  quitter.join();
}

TEST(AdminServerTest, PortFromEnv) {
  ::unsetenv("RWDT_ADMIN_PORT");
  EXPECT_EQ(AdminPortFromEnv(), 0u);
  EXPECT_EQ(AdminPortFromEnv(1234), 1234u);
  ::setenv("RWDT_ADMIN_PORT", "9464", 1);
  EXPECT_EQ(AdminPortFromEnv(), 9464u);
  ::setenv("RWDT_ADMIN_PORT", "0", 1);
  EXPECT_EQ(AdminPortFromEnv(7), 7u);
  ::setenv("RWDT_ADMIN_PORT", "123456", 1);  // out of range -> off
  EXPECT_EQ(AdminPortFromEnv(), 0u);
  ::unsetenv("RWDT_ADMIN_PORT");
}

/// End-to-end: an engine with admin_port=kAdminPortAuto serves all five
/// routes, and /metrics agrees with the engine's final MetricsSnapshot.
TEST(AdminServerTest, EngineEndToEnd) {
  TraceCollector trace;  // makes /tracez live

  engine::EngineOptions opts;
  opts.threads = 2;
  opts.admin_port = engine::EngineOptions::kAdminPortAuto;
  engine::Engine eng(opts);
  ASSERT_NE(eng.admin_server(), nullptr);
  const uint16_t port = eng.admin_server()->port();
  ASSERT_NE(port, 0);

  loggen::SourceProfile profile = loggen::ExampleProfile(3000);
  profile.name = "admin-e2e";
  eng.AnalyzeLog(profile, 7);
  const engine::MetricsSnapshot snap = eng.Snapshot();

  EXPECT_EQ(HttpGet(port, "/healthz").body, "ok\n");
  EXPECT_EQ(HttpGet(port, "/readyz").status, 200);

  const HttpResult metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.raw.find("application/openmetrics-text"),
            std::string::npos);
  // The engine's series must agree with the snapshot totals. The
  // engine label is a process-wide ordinal, so match on suffix.
  auto expect_value = [&](const std::string& prefix, uint64_t value) {
    const size_t at = metrics.body.find(prefix);
    ASSERT_NE(at, std::string::npos) << prefix << "\nin:\n" << metrics.body;
    const size_t space = metrics.body.find(' ', at);
    ASSERT_NE(space, std::string::npos);
    EXPECT_EQ(std::strtoull(metrics.body.c_str() + space + 1, nullptr, 10),
              value)
        << prefix;
  };
  expect_value("rwdt_engine_entries_total", snap.entries_processed);
  expect_value("rwdt_engine_queries_analyzed_total", snap.queries_analyzed);
  expect_value("rwdt_engine_cache_hits_total", snap.cache_hits);
  EXPECT_NE(metrics.body.find("rwdt_engine_stage_latency_ns_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.body.rfind("# EOF\n"), std::string::npos);

  // /statusz and /tracez must both be valid JSON.
  Interner dict;
  const HttpResult statusz = HttpGet(port, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_TRUE(tree::ParseJson(statusz.body, &dict).ok()) << statusz.body;
  EXPECT_NE(statusz.body.find("\"build\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"admin_port\":65536"), std::string::npos);

  const HttpResult tracez = HttpGet(port, "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_TRUE(tree::ParseJson(tracez.body, &dict).ok());
  // Point-in-time diagnostics: explicit charset, never cacheable.
  EXPECT_NE(tracez.raw.find("Content-Type: application/json; charset=utf-8"),
            std::string::npos)
      << tracez.raw;
  EXPECT_NE(tracez.raw.find("Cache-Control: no-store"), std::string::npos)
      << tracez.raw;

  // /metrics exposes the process footprint via the engine's
  // ProcStatsCollector (Linux: sampled from /proc at scrape time).
#if defined(__linux__)
  EXPECT_NE(metrics.body.find("rwdt_proc_resident_bytes"), std::string::npos);
  EXPECT_NE(metrics.body.find("rwdt_proc_cpu_seconds"), std::string::npos);
#endif
  // And the engine's occupancy gauges ride the same scrape.
  EXPECT_NE(metrics.body.find("rwdt_engine_interner_bytes"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("rwdt_engine_dedup_entries"),
            std::string::npos);

  // /profilez mounts on the engine admin too; parameter errors are 400s
  // without starting a capture (the capture path itself is covered by
  // obs_profiler_test and serve_test).
  EXPECT_EQ(HttpGet(port, "/profilez?format=xml").status, 400);
}

TEST(AdminServerTest, TracezWithoutCollectorIs503) {
  engine::EngineOptions opts;
  opts.threads = 1;
  opts.admin_port = engine::EngineOptions::kAdminPortAuto;
  engine::Engine eng(opts);
  ASSERT_NE(eng.admin_server(), nullptr);
  EXPECT_EQ(HttpGet(eng.admin_server()->port(), "/tracez").status, 503);
}

TEST(AdminServerTest, AdminOffByDefaultAndBindFailureIsNonFatal) {
  engine::Engine off;  // admin_port defaults to 0
  EXPECT_EQ(off.admin_server(), nullptr);

  // Two engines on the same fixed port: the second bind fails, which
  // must disable its admin server, not kill the engine.
  engine::EngineOptions opts;
  opts.threads = 1;
  opts.admin_port = engine::EngineOptions::kAdminPortAuto;
  engine::Engine first(opts);
  ASSERT_NE(first.admin_server(), nullptr);
  engine::EngineOptions clash = opts;
  clash.admin_port = first.admin_server()->port();
  engine::Engine second(clash);
  EXPECT_EQ(second.admin_server(), nullptr);
  // Both engines still work.
  loggen::SourceProfile profile = loggen::ExampleProfile(200);
  profile.name = "clash";
  EXPECT_GT(second.AnalyzeLog(profile, 3).total, 0u);
}

}  // namespace
}  // namespace rwdt::obs
