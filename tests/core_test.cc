#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/log_study.h"
#include "core/studies.h"
#include "graph/generators.h"

namespace rwdt::core {
namespace {

TEST(LogStudyTest, BasicInvariants) {
  loggen::SourceProfile p = loggen::ExampleProfile(1500);
  const SourceStudy study = AnalyzeLog(p, 101);
  EXPECT_EQ(study.total, 1500u);
  EXPECT_LE(study.valid, study.total);
  EXPECT_LE(study.unique, study.valid);
  EXPECT_GT(study.unique, 0u);
  // Valid aggregate counts every valid query once.
  EXPECT_EQ(study.valid_agg.queries, study.valid);
  EXPECT_EQ(study.unique_agg.queries, study.unique);
  // Histogram sums to the Select/Ask/Construct count.
  uint64_t hist = 0;
  for (uint64_t h : study.valid_agg.triple_histogram) hist += h;
  EXPECT_EQ(hist, study.valid_agg.select_ask_construct);
}

TEST(LogStudyTest, FragmentContainments) {
  loggen::SourceProfile p = loggen::ExampleProfile(1500);
  const SourceStudy s = AnalyzeLog(p, 55);
  const LogAggregates& a = s.valid_agg;
  // CQ subseteq CQ+F subseteq C2RPQ+F.
  EXPECT_LE(a.cq, a.cq_f);
  EXPECT_LE(a.cq_f, a.c2rpq_f);
  // Operator-set rows sum into the fragment subtotals.
  EXPECT_EQ(a.cq, a.ops_none + a.ops_and);
  EXPECT_EQ(a.cq_f,
            a.ops_none + a.ops_and + a.ops_filter + a.ops_and_filter);
  // Well-designed subseteq AFO-only.
  EXPECT_LE(a.well_designed, a.afo_only);
  // Most AFO queries are well-designed (paper: ~98%).
  if (a.afo_only > 100) {
    EXPECT_GT(10 * a.well_designed, 9 * a.afo_only);
  }
  // Cumulative hypergraph classes.
  EXPECT_LE(a.cq_fca, a.cq_htw1);
  EXPECT_LE(a.cq_htw1, a.cq_htw2);
  EXPECT_LE(a.cq_htw2, a.cq_htw3);
  EXPECT_LE(a.cqf_htw2, a.cqf_htw3);
  EXPECT_LE(a.cq_htw3, a.cq);
  EXPECT_LE(a.cqf_htw3, a.cq_f);
}

TEST(LogStudyTest, ShapesDominatedBySimpleOnes) {
  loggen::SourceProfile p = loggen::ExampleProfile(2000);
  const SourceStudy s = AnalyzeLog(p, 77);
  const LogAggregates& a = s.valid_agg;
  ASSERT_GT(a.graph_cqf, 100u);
  uint64_t simple = 0, total = 0;
  for (const auto& [shape, count] : a.shapes_with_constants) {
    total += count;
    if (shape <= hypergraph::GraphShape::kStar) simple += count;
  }
  EXPECT_EQ(total, a.graph_cqf);
  // Chains and stars dominate (Table 7: ~98-99%).
  EXPECT_GT(simple * 100, total * 85);
}

TEST(LogStudyTest, WikidataProfileShowsPaths) {
  auto profiles = loggen::Table2Profiles(/*scale=*/500000);
  const loggen::SourceProfile* wiki = nullptr;
  for (const auto& p : profiles) {
    if (p.name == "WikiRobot/OK") wiki = &p;
  }
  ASSERT_NE(wiki, nullptr);
  loggen::SourceProfile scaled = *wiki;
  scaled.total_queries = 2500;
  const SourceStudy s = AnalyzeLog(scaled, 31);
  const LogAggregates& a = s.valid_agg;
  // Property paths prominent (paper: 24% of Wikidata queries).
  const uint64_t with_paths =
      a.feature_counts.count(sparql::Feature::kPropertyPaths) > 0
          ? a.feature_counts.at(sparql::Feature::kPropertyPaths)
          : 0;
  EXPECT_GT(with_paths * 100, a.select_ask_construct * 10);
  // a* dominates the type distribution (Table 8: 50%).
  ASSERT_GT(a.property_paths, 50u);
  const uint64_t astar =
      a.path_types.count(paths::Table8Type::kAStar) > 0
          ? a.path_types.at(paths::Table8Type::kAStar)
          : 0;
  EXPECT_GT(astar * 100, a.property_paths * 30);
  // Nearly all paths are simple transitive expressions (>98%).
  EXPECT_GT(a.path_ste * 100, a.property_paths * 95);
}

TEST(LogStudyTest, MergeAddsUp) {
  loggen::SourceProfile p = loggen::ExampleProfile(500);
  SourceStudy a = AnalyzeLog(p, 1);
  SourceStudy b = AnalyzeLog(p, 2);
  SourceStudy merged = a;
  MergeSource(b, &merged);
  EXPECT_EQ(merged.total, a.total + b.total);
  EXPECT_EQ(merged.valid_agg.queries,
            a.valid_agg.queries + b.valid_agg.queries);
  EXPECT_EQ(merged.valid_agg.cq_f, a.valid_agg.cq_f + b.valid_agg.cq_f);
}

TEST(DtdStudyTest, MatchesGeneratorKnobs) {
  Interner dict;
  loggen::DtdCorpusOptions options;
  options.num_dtds = 103;  // the Bex et al. corpus size
  auto corpus = loggen::GenerateDtdCorpus(options, &dict, 13);
  const DtdStudyResult r = RunDtdStudy(corpus, dict);
  EXPECT_EQ(r.num_dtds, 103u);
  EXPECT_GT(r.num_expressions, 500u);
  // >92% chain, >99% SORE, few nondeterministic (paper Sections 4.2.2-3).
  EXPECT_GT(r.chain_expressions * 100, r.num_expressions * 85);
  EXPECT_GT(r.sores * 100, r.num_expressions * 94);
  EXPECT_GT(r.deterministic * 100, r.num_expressions * 90);
  EXPECT_LE(r.sores, r.kore2);
  EXPECT_GE(r.max_parse_depth, 2u);
  EXPECT_LE(r.max_parse_depth, 9u);
}

TEST(XmlQualityStudyTest, TopCategoriesDominate) {
  Interner dict;
  loggen::XmlCorpusOptions options;
  options.num_documents = 800;
  auto corpus = loggen::GenerateXmlCorpus(options, &dict, 21);
  const XmlQualityResult r = RunXmlQualityStudy(corpus);
  EXPECT_EQ(r.documents, 800u);
  // ~85% well-formed (the study's headline number).
  EXPECT_GT(r.well_formed * 100, r.documents * 75);
  EXPECT_LT(r.well_formed, r.documents);
  // The top three categories cover most errors (paper: 79.9%).
  uint64_t errors = 0;
  for (const auto& [cat, count] : r.error_histogram) {
    (void)cat;
    errors += count;
  }
  const uint64_t top3 =
      r.error_histogram.count(tree::XmlErrorCategory::kTagMismatch)
          ? r.error_histogram.at(tree::XmlErrorCategory::kTagMismatch)
          : 0;
  EXPECT_GT(errors, 0u);
  EXPECT_GT(top3 * 10, errors * 2);  // tag mismatch alone > 20%
}

TEST(XPathStudyTest, FragmentsNestProperly) {
  Interner dict;
  loggen::XPathCorpusOptions options;
  options.num_queries = 1000;
  auto corpus = loggen::GenerateXPathCorpus(options, 29);
  const XPathStudyResult r = RunXPathStudy(corpus, &dict);
  EXPECT_EQ(r.parsed, r.queries);
  // Tree patterns are positive and downward by definition.
  EXPECT_LE(r.tree_patterns, r.downward);
  EXPECT_LE(r.tree_patterns, r.positive);
  EXPECT_GT(r.downward, r.queries / 2);
  // child is the most used axis (Baelde: 31.1% of axis uses).
  auto count_of = [&](const std::string& axis) -> uint64_t {
    auto it = r.axis_counts.find(axis);
    return it == r.axis_counts.end() ? 0 : it->second;
  };
  EXPECT_GT(count_of("child"), count_of("parent"));
}

TEST(TreewidthStudyTest, BoundsOrdered) {
  Rng rng(3);
  graph::SimpleGraph road = graph::MakeRoadNetwork(20, 8, 0.1, 0.05, rng);
  const TreewidthRow row = MeasureTreewidth("road", road, true);
  EXPECT_EQ(row.nodes, 160u);
  EXPECT_LE(row.lower, row.upper);
  EXPECT_GT(row.upper, 0u);
}

}  // namespace
}  // namespace rwdt::core
