#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/rdf.h"
#include "graph/treewidth.h"

namespace rwdt::graph {
namespace {

TEST(TripleStoreTest, AddMatchDedup) {
  Interner dict;
  TripleStore store;
  const SymbolId a = dict.Intern("a"), knows = dict.Intern("knows"),
                 b = dict.Intern("b"), c = dict.Intern("c");
  store.Add(a, knows, b);
  store.Add(a, knows, b);  // duplicate
  store.Add(a, knows, c);
  store.Add(b, knows, c);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.Contains(a, knows, b));
  EXPECT_FALSE(store.Contains(b, knows, a));
  EXPECT_EQ(store.Objects(a, knows).size(), 2u);
  EXPECT_EQ(store.Subjects(knows, c).size(), 2u);
  EXPECT_EQ(store.Match(kInvalidSymbol, knows, kInvalidSymbol).size(), 3u);
  EXPECT_EQ(store.Match(kInvalidSymbol, kInvalidSymbol, c).size(), 2u);
}

TEST(TripleStoreTest, TermSets) {
  Interner dict;
  TripleStore store;
  store.Add(dict.Intern("s1"), dict.Intern("p"), dict.Intern("o1"));
  store.Add(dict.Intern("s2"), dict.Intern("p"), dict.Intern("s1"));
  EXPECT_EQ(store.SubjectSet().size(), 2u);
  EXPECT_EQ(store.PredicateSet().size(), 1u);
  EXPECT_EQ(store.ObjectSet().size(), 2u);
}

TEST(RdfStructureTest, GeneratedDatasetMatchesRealWorldShape) {
  Interner dict;
  Rng rng(7);
  TripleStore store = MakeRdfDataset(2000, 5, 4, &dict, rng);
  const RdfStructureStats stats = AnalyzeRdfStructure(store);
  // Fernandez et al.: predicates barely overlap subjects/objects.
  EXPECT_LT(stats.predicate_subject_overlap, 1e-3);
  EXPECT_LT(stats.predicate_object_overlap, 1e-3);
  // Few distinct predicate lists relative to subjects (~1% in the wild).
  EXPECT_LT(stats.predicate_list_ratio, 0.05);
  // Objects per (s,p) close to 1.
  EXPECT_LT(stats.objects_per_sp, 1.3);
  // Skewed in-degrees: max far above mean, power-law-ish alpha.
  EXPECT_GT(stats.in_degree_max, 10 * stats.in_degree_mean);
  EXPECT_GT(stats.in_degree_alpha, 1.2);
}

TEST(SimpleGraphTest, BasicOps) {
  SimpleGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 1);  // duplicate
  g.AddEdge(2, 2);  // self-loop ignored
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Components().size(), 2u);  // {0,1,2} and {3}
}

SimpleGraph Cycle(size_t n) {
  SimpleGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    g.AddEdge(i, static_cast<uint32_t>((i + 1) % n));
  }
  return g;
}

SimpleGraph Clique(size_t n) {
  SimpleGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

SimpleGraph Grid(size_t w, size_t h) {
  SimpleGraph g(w * h);
  auto id = [&](size_t x, size_t y) {
    return static_cast<uint32_t>(y * w + x);
  };
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      if (x + 1 < w) g.AddEdge(id(x, y), id(x + 1, y));
      if (y + 1 < h) g.AddEdge(id(x, y), id(x, y + 1));
    }
  }
  return g;
}

TEST(TreewidthTest, ExactOnKnownGraphs) {
  EXPECT_EQ(TreewidthExact(SimpleGraph(3)).value(), 0u);  // no edges
  {
    SimpleGraph path(4);
    path.AddEdge(0, 1);
    path.AddEdge(1, 2);
    path.AddEdge(2, 3);
    EXPECT_EQ(TreewidthExact(path).value(), 1u);
  }
  EXPECT_EQ(TreewidthExact(Cycle(5)).value(), 2u);
  EXPECT_EQ(TreewidthExact(Clique(4)).value(), 3u);
  EXPECT_EQ(TreewidthExact(Clique(6)).value(), 5u);
  EXPECT_EQ(TreewidthExact(Grid(3, 3)).value(), 3u);
  EXPECT_EQ(TreewidthExact(Grid(4, 4)).value(), 4u);
}

TEST(TreewidthTest, BoundsSandwichExact) {
  Rng rng(11);
  for (int round = 0; round < 15; ++round) {
    SimpleGraph g = MakeRandomGraph(12, 18, rng);
    const auto exact = TreewidthExact(g);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(TreewidthLowerBoundDegeneracy(g), *exact);
    EXPECT_LE(TreewidthLowerBoundMmdPlus(g), *exact);
    EXPECT_GE(TreewidthUpperBoundMinFill(g), *exact);
    EXPECT_GE(TreewidthUpperBoundMinDegree(g), *exact);
    EXPECT_GE(TreewidthLowerBoundMmdPlus(g),
              TreewidthLowerBoundDegeneracy(g) > 0
                  ? TreewidthLowerBoundDegeneracy(g)
                  : 0);
  }
}

TEST(TreewidthTest, AtMostSpecialCases) {
  EXPECT_TRUE(*TreewidthAtMost(SimpleGraph(3), 0));
  {
    SimpleGraph tree(5);
    tree.AddEdge(0, 1);
    tree.AddEdge(0, 2);
    tree.AddEdge(2, 3);
    tree.AddEdge(2, 4);
    EXPECT_TRUE(IsForest(tree));
    EXPECT_TRUE(*TreewidthAtMost(tree, 1));
    EXPECT_FALSE(*TreewidthAtMost(tree, 0));
  }
  EXPECT_FALSE(IsForest(Cycle(4)));
  EXPECT_FALSE(*TreewidthAtMost(Cycle(4), 1));
  EXPECT_TRUE(*TreewidthAtMost(Cycle(4), 2));
  EXPECT_FALSE(*TreewidthAtMost(Clique(4), 2));
  EXPECT_TRUE(*TreewidthAtMost(Clique(4), 3));
  EXPECT_FALSE(*TreewidthAtMost(Grid(3, 3), 2));
  EXPECT_TRUE(*TreewidthAtMost(Grid(3, 3), 3));
}

TEST(TreewidthTest, AtMost2AgreesWithExactOnRandomGraphs) {
  Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    SimpleGraph g = MakeRandomGraph(10, 5 + rng.NextBelow(10), rng);
    const auto exact = TreewidthExact(g);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(*TreewidthAtMost(g, 2), *exact <= 2);
    EXPECT_EQ(*TreewidthAtMost(g, 3), *exact <= 3);
  }
}

TEST(GeneratorsTest, StructuralClassesHaveExpectedTreewidthShape) {
  Rng rng(5);
  // Road grid: lower/upper bounds scale with the small grid dimension.
  SimpleGraph road = MakeRoadNetwork(30, 10, 0.1, 0.05, rng);
  const size_t road_ub = TreewidthUpperBoundMinDegree(road);
  EXPECT_LE(road_ub, 30u);
  EXPECT_GE(road_ub, 3u);

  // Preferential attachment: treewidth bound large relative to size.
  SimpleGraph web = MakePreferentialAttachment(300, 3, rng);
  const size_t web_lb = TreewidthLowerBoundMmdPlus(web);
  EXPECT_GE(web_lb, 4u);

  // Genealogy: tiny bounds.
  SimpleGraph royal = MakeGenealogy(500, 0.05, rng);
  const size_t royal_ub = TreewidthUpperBoundMinFill(royal);
  EXPECT_LE(royal_ub, 12u);
}

TEST(GeneratorsTest, ToSimpleGraphSharesTerms) {
  Interner dict;
  TripleStore store;
  store.Add(dict.Intern("a"), dict.Intern("p"), dict.Intern("b"));
  store.Add(dict.Intern("b"), dict.Intern("q"), dict.Intern("c"));
  std::vector<SymbolId> terms;
  SimpleGraph g = ToSimpleGraph(store, &terms);
  EXPECT_EQ(g.NumVertices(), 3u);  // a, b, c (predicates are edges)
  EXPECT_EQ(g.NumEdges(), 2u);
}

}  // namespace
}  // namespace rwdt::graph
