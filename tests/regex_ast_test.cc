#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/ast.h"
#include "regex/parser.h"

namespace rwdt::regex {
namespace {

RegexPtr Parse(const std::string& s, Interner* dict) {
  auto r = ParseRegex(s, dict);
  EXPECT_TRUE(r.ok()) << s << ": " << r.status().ToString();
  return r.value();
}

TEST(ParserTest, ParsesSymbols) {
  Interner dict;
  RegexPtr e = Parse("a", &dict);
  EXPECT_EQ(e->op(), Op::kSymbol);
  EXPECT_EQ(dict.Name(e->symbol()), "a");
}

TEST(ParserTest, ParsesQuotedSymbols) {
  Interner dict;
  RegexPtr e = Parse("'wdt:P31'", &dict);
  EXPECT_EQ(e->op(), Op::kSymbol);
  EXPECT_EQ(dict.Name(e->symbol()), "wdt:P31");
}

TEST(ParserTest, PostfixBindsTighterThanConcat) {
  Interner dict;
  RegexPtr e = Parse("ab*", &dict);
  ASSERT_EQ(e->op(), Op::kConcat);
  ASSERT_EQ(e->children().size(), 2u);
  EXPECT_EQ(e->children()[0]->op(), Op::kSymbol);
  EXPECT_EQ(e->children()[1]->op(), Op::kStar);
}

TEST(ParserTest, ConcatBindsTighterThanUnion) {
  Interner dict;
  RegexPtr e = Parse("ab|c", &dict);
  ASSERT_EQ(e->op(), Op::kUnion);
  EXPECT_EQ(e->children()[0]->op(), Op::kConcat);
  EXPECT_EQ(e->children()[1]->op(), Op::kSymbol);
}

TEST(ParserTest, ParsesEpsilonAndEmpty) {
  Interner dict;
  EXPECT_EQ(Parse("<eps>", &dict)->op(), Op::kEpsilon);
  EXPECT_EQ(Parse("<empty>", &dict)->op(), Op::kEmpty);
}

TEST(ParserTest, ParsesNestedGroups) {
  Interner dict;
  RegexPtr e = Parse("(a|b)*a(a|b)", &dict);
  ASSERT_EQ(e->op(), Op::kConcat);
  EXPECT_EQ(e->children().size(), 3u);
  EXPECT_EQ(e->children()[0]->op(), Op::kStar);
}

TEST(ParserTest, RejectsGarbage) {
  Interner dict;
  EXPECT_FALSE(ParseRegex("a)(", &dict).ok());
  EXPECT_FALSE(ParseRegex("(a", &dict).ok());
  EXPECT_FALSE(ParseRegex("|a", &dict).ok());
  EXPECT_FALSE(ParseRegex("", &dict).ok());
  EXPECT_FALSE(ParseRegex("'unterminated", &dict).ok());
}

TEST(ParserTest, RoundTripsThroughToString) {
  Interner dict;
  for (const std::string s :
       {"a", "ab*", "(a|b)*a(a|b)", "a?b+c*", "b*a(b*a)*", "(ab|cd)?e"}) {
    RegexPtr e1 = Parse(s, &dict);
    RegexPtr e2 = Parse(e1->ToString(dict), &dict);
    EXPECT_TRUE(StructurallyEqual(e1, e2)) << s;
  }
}

TEST(AstTest, SizeAndDepth) {
  Interner dict;
  RegexPtr e = Parse("(a|b)*", &dict);
  EXPECT_EQ(e->Size(), 4u);   // star, union, a, b
  EXPECT_EQ(e->Depth(), 3u);  // symbol < union < star
  EXPECT_EQ(Parse("a", &dict)->Depth(), 1u);
}

TEST(AstTest, Nullable) {
  Interner dict;
  EXPECT_TRUE(Parse("a*", &dict)->Nullable());
  EXPECT_TRUE(Parse("a?b?", &dict)->Nullable());
  EXPECT_FALSE(Parse("a?b", &dict)->Nullable());
  EXPECT_TRUE(Parse("a|b*", &dict)->Nullable());
  EXPECT_FALSE(Parse("a|b", &dict)->Nullable());
  EXPECT_TRUE(Parse("(a?)+", &dict)->Nullable());
  EXPECT_FALSE(Parse("<empty>", &dict)->Nullable());
  EXPECT_TRUE(Parse("<eps>", &dict)->Nullable());
}

TEST(AstTest, AlphabetAndOccurrences) {
  Interner dict;
  RegexPtr e = Parse("(a|b)*a(a|b)", &dict);
  EXPECT_EQ(e->Alphabet().size(), 2u);
  EXPECT_EQ(e->MaxSymbolOccurrences(), 3u);  // 'a' occurs 3 times
  const SymbolId a = dict.Lookup("a");
  const SymbolId b = dict.Lookup("b");
  auto occ = e->SymbolOccurrences();
  EXPECT_EQ(occ[a], 3u);
  EXPECT_EQ(occ[b], 2u);
}

TEST(AstTest, FactoriesFlattenNesting) {
  Interner dict;
  const SymbolId a = dict.Intern("a");
  RegexPtr e = Regex::Concat(
      Regex::Concat(Regex::Symbol(a), Regex::Symbol(a)), Regex::Symbol(a));
  EXPECT_EQ(e->op(), Op::kConcat);
  EXPECT_EQ(e->children().size(), 3u);
  RegexPtr u = Regex::Union(
      Regex::Union(Regex::Symbol(a), Regex::Symbol(a)), Regex::Symbol(a));
  EXPECT_EQ(u->children().size(), 3u);
}

TEST(AstTest, SingletonFactoriesCollapse) {
  Interner dict;
  const SymbolId a = dict.Intern("a");
  EXPECT_EQ(Regex::Concat(std::vector<RegexPtr>{Regex::Symbol(a)})->op(),
            Op::kSymbol);
  EXPECT_EQ(Regex::Union(std::vector<RegexPtr>{Regex::Symbol(a)})->op(),
            Op::kSymbol);
  EXPECT_EQ(Regex::Concat(std::vector<RegexPtr>{})->op(), Op::kEpsilon);
  EXPECT_EQ(Regex::Union(std::vector<RegexPtr>{})->op(), Op::kEmpty);
}

}  // namespace
}  // namespace rwdt::regex
