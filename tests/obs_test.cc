#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/json.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "engine/thread_pool.h"
#include "ingest/ingest.h"
#include "loggen/sparql_gen.h"
#include "obs/log.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "tree/json.h"

namespace rwdt::obs {
namespace {

// ---------------------------------------------------------------------
// common::JsonEscape

TEST(JsonEscapeTest, PlainTextUnchanged) {
  EXPECT_EQ(JsonEscape("plain ascii 123"), "plain ascii 123");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, ControlCharacters) {
  EXPECT_EQ(JsonEscape("\n"), "\\n");
  EXPECT_EQ(JsonEscape("\t"), "\\t");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string_view("\x1f", 1)), "\\u001f");
}

TEST(JsonEscapeTest, InvalidUtf8BecomesReplacementChar) {
  // A lone 0xFF is not valid UTF-8; the escaper must not pass it
  // through, or the emitted JSON would be unreadable by strict parsers.
  EXPECT_EQ(JsonEscape(std::string_view("\xff", 1)), "\xEF\xBF\xBD");
  // Truncated two-byte sequence at end of input.
  EXPECT_EQ(JsonEscape(std::string_view("\xc3", 1)), "\xEF\xBF\xBD");
}

TEST(JsonEscapeTest, ValidMultibytePreserved) {
  const std::string euro = "\xE2\x82\xAC";  // U+20AC
  EXPECT_EQ(JsonEscape(euro), euro);
  const std::string accented = "h\xC3\xA9llo";  // "héllo"
  EXPECT_EQ(JsonEscape(accented), accented);
}

TEST(JsonEscapeTest, EscapedOutputParsesAsJson) {
  // Round-trip the nastiest input through the repo's own JSON parser.
  const std::string nasty = std::string("k\"ey\n\xff\x01\\end", 11);
  std::string doc = "{\"";
  AppendJsonEscaped(nasty, &doc);
  doc += "\":1}";
  Interner dict;
  const auto parsed = tree::ParseJson(doc, &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  ASSERT_EQ(parsed.value()->members().size(), 1u);
}

TEST(JsonEscapeTest, AppendJsonStringField) {
  std::string out;
  AppendJsonStringField("key", "va\"l", &out);
  AppendJsonStringField("last", "x", &out, /*trailing_comma=*/false);
  EXPECT_EQ(out, "\"key\":\"va\\\"l\",\"last\":\"x\"");
}

// ---------------------------------------------------------------------
// TraceRing

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
}

TEST(TraceRingTest, ExactBeforeWraparound) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) ring.Append("e", /*ts_ns=*/i, 1);
  EXPECT_EQ(ring.appended(), 5u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, i);  // oldest first, none dropped
  }
}

TEST(TraceRingTest, WraparoundKeepsNewestWindow) {
  // 20 appends into capacity 8: the ring retains the newest window.
  // Post-wraparound the drain conservatively drops the single oldest
  // retained slot (a concurrent writer could be rewriting it), so
  // exactly capacity-1 events survive: logical indices 13..19.
  TraceRing ring(8);
  for (uint64_t i = 0; i < 20; ++i) ring.Append("e", /*ts_ns=*/i, 1);
  EXPECT_EQ(ring.appended(), 20u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 7u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 13 + i);
  }
}

// ---------------------------------------------------------------------
// TraceCollector

TEST(TraceCollectorTest, InstallUninstallTogglesTracingActive) {
  EXPECT_FALSE(TracingActive());
  {
    TraceCollector trace;
    EXPECT_TRUE(trace.installed());
    EXPECT_TRUE(TracingActive());
  }
  EXPECT_FALSE(TracingActive());
}

TEST(TraceCollectorTest, SecondCollectorStaysInert) {
  TraceCollector first;
  TraceCollector second;
  EXPECT_TRUE(first.installed());
  EXPECT_FALSE(second.installed());
  { Span span("only-first"); }
  EXPECT_EQ(first.events_recorded(), 1u);
  EXPECT_EQ(second.events_recorded(), 0u);
}

TEST(TraceCollectorTest, SpansAreNoOpsWhenNoCollector) {
  { Span span("ignored"); }
  EmitSpan("ignored", 0, 1);  // must not crash or leak
  EXPECT_FALSE(TracingActive());
}

TEST(TraceCollectorTest, NewCollectorDoesNotSeeOldSpans) {
  // The generation counter must invalidate thread-local ring caches
  // across collector lifetimes: spans emitted under collector A (on this
  // same thread) may not leak into collector B's export.
  {
    TraceCollector a;
    ASSERT_TRUE(a.installed());
    { Span span("old-span"); }
    EXPECT_EQ(a.events_recorded(), 1u);
  }
  TraceCollector b;
  ASSERT_TRUE(b.installed());
  { Span span("new-span"); }
  EXPECT_EQ(b.events_recorded(), 1u);
  const std::string json = b.ToChromeJson();
  EXPECT_NE(json.find("\"new-span\""), std::string::npos);
  EXPECT_EQ(json.find("\"old-span\""), std::string::npos);
}

TEST(TraceCollectorTest, ConcurrentWritersUnderThreadPool) {
  TraceCollector trace;
  ASSERT_TRUE(trace.installed());
  constexpr int kTasks = 200;
  {
    engine::ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([] {
        Span span("task");
        // A touch of work so spans have nonzero duration.
        volatile int sink = 0;
        for (int j = 0; j < 100; ++j) sink += j;
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(trace.events_recorded(), static_cast<uint64_t>(kTasks));
  EXPECT_GE(trace.threads_seen(), 1u);
  EXPECT_LE(trace.threads_seen(), 4u);
  EXPECT_EQ(trace.events_dropped(), 0u);  // default ring >> kTasks

  // The export must parse (with the repo's own JSON parser) and must be
  // monotonically consistent: within each thread, complete events are
  // sorted by start time and durations are non-negative.
  Interner dict;
  const auto parsed = tree::ParseJson(trace.ToChromeJson(), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const tree::JsonPtr events = parsed.value()->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind(), tree::JsonValue::Kind::kArray);
  std::map<double, double> last_ts;
  int slices = 0;
  for (const tree::JsonPtr& ev : events->items()) {
    const tree::JsonPtr ph = ev->Get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string_value() != "X") continue;  // skip "M" metadata
    ++slices;
    ASSERT_NE(ev->Get("name"), nullptr);
    const double tid = ev->Get("tid")->number_value();
    const double ts = ev->Get("ts")->number_value();
    const double dur = ev->Get("dur")->number_value();
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[tid] = ts;
  }
  EXPECT_EQ(slices, kTasks);
}

TEST(TraceCollectorTest, EngineRunProducesStageSpans) {
  TraceCollector trace;
  engine::EngineOptions opts;
  opts.threads = 2;
  engine::Engine eng(opts);
  eng.AnalyzeLog(loggen::ExampleProfile(300), 5);
  EXPECT_GT(trace.events_recorded(), 0u);
  const std::string json = trace.ToChromeJson();
  for (const char* stage :
       {"\"parse\"", "\"features\"", "\"hypergraph\"", "\"paths\"",
        "\"aggregate\"", "\"generate\""}) {
    EXPECT_NE(json.find(stage), std::string::npos) << stage;
  }
  Interner dict;
  EXPECT_TRUE(tree::ParseJson(json, &dict).ok());
}

// ---------------------------------------------------------------------
// Logging

class CaptureSink : public LogSink {
 public:
  void Write(const LogRecord& record) override { records.push_back(record); }
  std::vector<LogRecord> records;
};

TEST(LogTest, LevelGateSkipsDisabledStatements) {
  auto sink = std::make_shared<CaptureSink>();
  Logger::Global().SetSinks({sink});
  Logger::Global().set_min_level(LogLevel::kWarn);
  int evals = 0;
  auto expensive = [&evals]() {
    ++evals;
    return 42;
  };
  RWDT_LOG(INFO) << "suppressed " << expensive();
  EXPECT_EQ(evals, 0);  // operands of a disabled statement never run
  EXPECT_TRUE(sink->records.empty());

  RWDT_LOG(ERROR) << "kept " << expensive();
  EXPECT_EQ(evals, 1);
  ASSERT_EQ(sink->records.size(), 1u);
  const LogRecord& rec = sink->records[0];
  EXPECT_EQ(rec.level, LogLevel::kError);
  EXPECT_EQ(rec.message, "kept 42");
  EXPECT_NE(std::string(rec.file).find("obs_test.cc"), std::string::npos);
  EXPECT_GT(rec.line, 0);
  EXPECT_GT(rec.unix_micros, 0);
  Logger::Global().ResetToDefault();
}

TEST(LogTest, JsonLinesSinkEmitsParseableRecords) {
  const std::string path = "obs_test_log.jsonl";
  {
    auto opened = JsonLinesSink::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.error_message();
    Logger::Global().SetSinks({std::move(opened).value()});
    Logger::Global().set_min_level(LogLevel::kDebug);
    RWDT_LOG(INFO) << "hello \"quoted\"\nsecond line";
    RWDT_LOG(DEBUG) << "debug record";
    Logger::Global().ResetToDefault();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);

  Interner dict;
  const auto first = tree::ParseJson(lines[0], &dict);
  ASSERT_TRUE(first.ok()) << first.error_message();
  EXPECT_EQ(first.value()->Get("level")->string_value(), "info");
  EXPECT_EQ(first.value()->Get("msg")->string_value(),
            "hello \"quoted\"\nsecond line");
  EXPECT_GT(first.value()->Get("ts_us")->number_value(), 0.0);
  const auto second = tree::ParseJson(lines[1], &dict);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()->Get("level")->string_value(), "debug");
}

// ---------------------------------------------------------------------
// ProgressReporter

TEST(ProgressTest, TicksAndRunReportMatchFinalSnapshot) {
  engine::Metrics metrics;
  metrics.AddEntries(123);
  metrics.AddAnalyzed(45);
  metrics.AddHits(10);
  metrics.AddMisses(5);

  const std::string path = "obs_test_report.json";
  ProgressOptions popts;
  popts.interval_ms = 10;
  popts.log_progress = false;  // keep test output quiet
  popts.report_path = path;
  popts.label = "obs-test";
  ASSERT_TRUE(popts.Validate().ok());
  ASSERT_TRUE(popts.enabled());

  ProgressReporter reporter([&metrics] { return metrics.Snapshot(); },
                            popts);
  // Let a few ticks elapse, then bump a counter the report must see.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  metrics.AddEntries(1);
  reporter.Stop();
  EXPECT_GE(reporter.ticks(), 1u);

  // The run report's counters are exactly the final snapshot's.
  Interner dict;
  const auto parsed = tree::ParseJson(reporter.report_json(), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const tree::JsonPtr root = parsed.value();
  EXPECT_EQ(root->Get("label")->string_value(), "obs-test");
  EXPECT_GE(root->Get("elapsed_ms")->number_value(), 0.0);
  EXPECT_EQ(root->Get("ticks")->number_value(),
            static_cast<double>(reporter.ticks()));
  const tree::JsonPtr m = root->Get("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Get("entries_processed")->number_value(), 124.0);
  EXPECT_EQ(m->Get("queries_analyzed")->number_value(), 45.0);
  EXPECT_EQ(m->Get("cache_hits")->number_value(), 10.0);
  EXPECT_EQ(m->Get("cache_misses")->number_value(), 5.0);

  // The report file holds the same JSON document.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(file_contents.str(), reporter.report_json() + "\n");
}

TEST(ProgressTest, DisabledByDefault) {
  ProgressOptions popts;
  EXPECT_FALSE(popts.enabled());
  EXPECT_TRUE(popts.Validate().ok());
  popts.interval_ms = 3600 * 1000 + 1;
  EXPECT_FALSE(popts.Validate().ok());
}

TEST(ProgressTest, StopIsIdempotentWithoutThread) {
  engine::Metrics metrics;
  ProgressOptions popts;  // interval 0: no background thread
  ProgressReporter reporter([&metrics] { return metrics.Snapshot(); },
                            popts);
  reporter.Stop();
  reporter.Stop();
  EXPECT_EQ(reporter.ticks(), 0u);
  EXPECT_FALSE(reporter.report_json().empty());  // still rendered
}

// ---------------------------------------------------------------------
// IngestReport::ToJson

TEST(ObsIntegrationTest, IngestReportToJsonParses) {
  // TSV input whose source column needs escaping, plus a corrupt line.
  std::stringstream in(
      "s\"rc\tSELECT ?x WHERE { ?s ?p ?x }\n"
      "s\"rc\tnot a query at all ((\n");
  ingest::IngestOptions opts;
  opts.format = ingest::LogFormat::kTsv;
  opts.engine.threads = 1;
  const auto r = ingest::IngestStream(in, opts);
  ASSERT_TRUE(r.ok()) << r.error_message();
  const ingest::IngestReport& report = r.value();
  EXPECT_EQ(report.lines_read, 2u);
  ASSERT_EQ(report.per_source.count("s\"rc"), 1u);

  Interner dict;
  const auto parsed = tree::ParseJson(report.ToJson(), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const tree::JsonPtr root = parsed.value();
  const tree::JsonPtr study = root->Get("study");
  ASSERT_NE(study, nullptr);
  EXPECT_EQ(study->Get("total")->number_value(),
            static_cast<double>(report.study.total));
  EXPECT_EQ(root->Get("lines_read")->number_value(), 2.0);
  const tree::JsonPtr per_source = root->Get("per_source");
  ASSERT_NE(per_source, nullptr);
  EXPECT_NE(per_source->Get("s\"rc"), nullptr);  // key escaped, then
                                                 // un-escaped by parser
  ASSERT_NE(root->Get("metrics"), nullptr);
}

}  // namespace
}  // namespace rwdt::obs
