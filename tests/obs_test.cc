#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/json.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "engine/thread_pool.h"
#include "ingest/ingest.h"
#include "loggen/sparql_gen.h"
#include "obs/log.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "tree/json.h"

namespace rwdt::obs {
namespace {

// ---------------------------------------------------------------------
// common::JsonEscape

TEST(JsonEscapeTest, PlainTextUnchanged) {
  EXPECT_EQ(JsonEscape("plain ascii 123"), "plain ascii 123");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, ControlCharacters) {
  EXPECT_EQ(JsonEscape("\n"), "\\n");
  EXPECT_EQ(JsonEscape("\t"), "\\t");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string_view("\x1f", 1)), "\\u001f");
}

TEST(JsonEscapeTest, InvalidUtf8BecomesReplacementChar) {
  // A lone 0xFF is not valid UTF-8; the escaper must not pass it
  // through, or the emitted JSON would be unreadable by strict parsers.
  EXPECT_EQ(JsonEscape(std::string_view("\xff", 1)), "\xEF\xBF\xBD");
  // Truncated two-byte sequence at end of input.
  EXPECT_EQ(JsonEscape(std::string_view("\xc3", 1)), "\xEF\xBF\xBD");
}

TEST(JsonEscapeTest, ValidMultibytePreserved) {
  const std::string euro = "\xE2\x82\xAC";  // U+20AC
  EXPECT_EQ(JsonEscape(euro), euro);
  const std::string accented = "h\xC3\xA9llo";  // "héllo"
  EXPECT_EQ(JsonEscape(accented), accented);
}

TEST(JsonEscapeTest, EscapedOutputParsesAsJson) {
  // Round-trip the nastiest input through the repo's own JSON parser.
  const std::string nasty = std::string("k\"ey\n\xff\x01\\end", 11);
  std::string doc = "{\"";
  AppendJsonEscaped(nasty, &doc);
  doc += "\":1}";
  Interner dict;
  const auto parsed = tree::ParseJson(doc, &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  ASSERT_EQ(parsed.value()->members().size(), 1u);
}

TEST(JsonEscapeTest, AppendJsonStringField) {
  std::string out;
  AppendJsonStringField("key", "va\"l", &out);
  AppendJsonStringField("last", "x", &out, /*trailing_comma=*/false);
  EXPECT_EQ(out, "\"key\":\"va\\\"l\",\"last\":\"x\"");
}

// ---------------------------------------------------------------------
// TraceRing

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
}

TEST(TraceRingTest, ExactBeforeWraparound) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) ring.Append("e", /*ts_ns=*/i, 1);
  EXPECT_EQ(ring.appended(), 5u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, i);  // oldest first, none dropped
  }
}

TEST(TraceRingTest, WraparoundKeepsNewestWindow) {
  // 20 appends into capacity 8: the ring retains the newest window.
  // Post-wraparound the drain conservatively drops the single oldest
  // retained slot (a concurrent writer could be rewriting it), so
  // exactly capacity-1 events survive: logical indices 13..19.
  TraceRing ring(8);
  for (uint64_t i = 0; i < 20; ++i) ring.Append("e", /*ts_ns=*/i, 1);
  EXPECT_EQ(ring.appended(), 20u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 7u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 13 + i);
  }
}

// ---------------------------------------------------------------------
// TraceCollector

TEST(TraceCollectorTest, InstallUninstallTogglesTracingActive) {
  EXPECT_FALSE(TracingActive());
  {
    TraceCollector trace;
    EXPECT_TRUE(trace.installed());
    EXPECT_TRUE(TracingActive());
  }
  EXPECT_FALSE(TracingActive());
}

TEST(TraceCollectorTest, SecondCollectorStaysInert) {
  TraceCollector first;
  TraceCollector second;
  EXPECT_TRUE(first.installed());
  EXPECT_FALSE(second.installed());
  { Span span("only-first"); }
  EXPECT_EQ(first.events_recorded(), 1u);
  EXPECT_EQ(second.events_recorded(), 0u);
}

TEST(TraceCollectorTest, SpansAreNoOpsWhenNoCollector) {
  { Span span("ignored"); }
  EmitSpan("ignored", 0, 1);  // must not crash or leak
  EXPECT_FALSE(TracingActive());
}

TEST(TraceCollectorTest, NewCollectorDoesNotSeeOldSpans) {
  // The generation counter must invalidate thread-local ring caches
  // across collector lifetimes: spans emitted under collector A (on this
  // same thread) may not leak into collector B's export.
  {
    TraceCollector a;
    ASSERT_TRUE(a.installed());
    { Span span("old-span"); }
    EXPECT_EQ(a.events_recorded(), 1u);
  }
  TraceCollector b;
  ASSERT_TRUE(b.installed());
  { Span span("new-span"); }
  EXPECT_EQ(b.events_recorded(), 1u);
  const std::string json = b.ToChromeJson();
  EXPECT_NE(json.find("\"new-span\""), std::string::npos);
  EXPECT_EQ(json.find("\"old-span\""), std::string::npos);
}

TEST(TraceCollectorTest, ConcurrentWritersUnderThreadPool) {
  TraceCollector trace;
  ASSERT_TRUE(trace.installed());
  constexpr int kTasks = 200;
  {
    engine::ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([] {
        Span span("task");
        // A touch of work so spans have nonzero duration.
        volatile int sink = 0;
        for (int j = 0; j < 100; ++j) sink += j;
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(trace.events_recorded(), static_cast<uint64_t>(kTasks));
  EXPECT_GE(trace.threads_seen(), 1u);
  EXPECT_LE(trace.threads_seen(), 4u);
  EXPECT_EQ(trace.events_dropped(), 0u);  // default ring >> kTasks

  // The export must parse (with the repo's own JSON parser) and must be
  // monotonically consistent: within each thread, complete events are
  // sorted by start time and durations are non-negative.
  Interner dict;
  const auto parsed = tree::ParseJson(trace.ToChromeJson(), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const tree::JsonPtr events = parsed.value()->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind(), tree::JsonValue::Kind::kArray);
  std::map<double, double> last_ts;
  int slices = 0;
  for (const tree::JsonPtr& ev : events->items()) {
    const tree::JsonPtr ph = ev->Get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string_value() != "X") continue;  // skip "M" metadata
    ++slices;
    ASSERT_NE(ev->Get("name"), nullptr);
    const double tid = ev->Get("tid")->number_value();
    const double ts = ev->Get("ts")->number_value();
    const double dur = ev->Get("dur")->number_value();
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[tid] = ts;
  }
  EXPECT_EQ(slices, kTasks);
}

TEST(TraceCollectorTest, EngineRunProducesStageSpans) {
  TraceCollector trace;
  engine::EngineOptions opts;
  opts.threads = 2;
  engine::Engine eng(opts);
  eng.AnalyzeLog(loggen::ExampleProfile(300), 5);
  EXPECT_GT(trace.events_recorded(), 0u);
  const std::string json = trace.ToChromeJson();
  for (const char* stage :
       {"\"parse\"", "\"features\"", "\"hypergraph\"", "\"paths\"",
        "\"aggregate\"", "\"generate\""}) {
    EXPECT_NE(json.find(stage), std::string::npos) << stage;
  }
  Interner dict;
  EXPECT_TRUE(tree::ParseJson(json, &dict).ok());
}

// ---------------------------------------------------------------------
// TraceContext: traceparent wire format

TEST(TraceparentTest, FormatParsesBackExactly) {
  TraceContext ctx;
  ctx.trace_id = 0x0123456789abcdefull;
  ctx.span_id = 0xfedcba9876543210ull;
  ctx.sampled = true;
  const std::string header = FormatTraceparent(ctx);
  EXPECT_EQ(header,
            "00-00000000000000000123456789abcdef-fedcba9876543210-01");

  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(header, &parsed));
  EXPECT_EQ(parsed.trace_id, ctx.trace_id);
  EXPECT_EQ(parsed.span_id, ctx.span_id);  // caller's span = our parent
  EXPECT_TRUE(parsed.sampled);

  ctx.sampled = false;
  ASSERT_TRUE(ParseTraceparent(FormatTraceparent(ctx), &parsed));
  EXPECT_FALSE(parsed.sampled);
}

TEST(TraceparentTest, Folds128BitTraceIds) {
  TraceContext ctx;
  // Low half nonzero: keep it.
  ASSERT_TRUE(ParseTraceparent(
      "00-11112222333344440123456789abcdef-aaaabbbbccccdddd-01", &ctx));
  EXPECT_EQ(ctx.trace_id, 0x0123456789abcdefull);
  // Low half all zero: fall back to the high half, not to id 0.
  ASSERT_TRUE(ParseTraceparent(
      "00-11112222333344440000000000000000-aaaabbbbccccdddd-00", &ctx));
  EXPECT_EQ(ctx.trace_id, 0x1111222233334444ull);
}

TEST(TraceparentTest, MalformedHeadersRejectedAndContextUntouched) {
  TraceContext ctx;
  ctx.trace_id = 42;  // sentinel: rejection must not clobber it
  const char* bad[] = {
      "",
      "00",
      // Uppercase hex (the spec demands lowercase).
      "00-0000000000000000ABCDEF0123456789-aaaabbbbccccdddd-01",
      // Wrong length (one digit short).
      "00-0000000000000000123456789abcdef-aaaabbbbccccdddd-01",
      // Dash in the wrong position.
      "00_00000000000000000123456789abcdef-aaaabbbbccccdddd-01",
      // Forbidden version ff.
      "ff-00000000000000000123456789abcdef-aaaabbbbccccdddd-01",
      // All-zero trace id.
      "00-00000000000000000000000000000000-aaaabbbbccccdddd-01",
      // All-zero parent span id.
      "00-00000000000000000123456789abcdef-0000000000000000-01",
      // Non-hex garbage.
      "00-0000000000000000012345678zabcdef-aaaabbbbccccdddd-01",
  };
  for (const char* header : bad) {
    EXPECT_FALSE(ParseTraceparent(header, &ctx)) << header;
    EXPECT_EQ(ctx.trace_id, 42u) << header;
  }
}

TEST(TraceparentTest, TraceIdHexIsSixteenLowercaseDigits) {
  EXPECT_EQ(TraceIdHex(0), "0000000000000000");
  EXPECT_EQ(TraceIdHex(0x0123456789abcdefull), "0123456789abcdef");
  EXPECT_EQ(TraceIdHex(0xffffffffffffffffull), "ffffffffffffffff");
}

TEST(TraceIdTest, NewIdsAreNonZeroAndDistinct) {
  const uint64_t a = NewTraceId();
  const uint64_t b = NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(NewSpanId(), NewSpanId());
}

// ---------------------------------------------------------------------
// TraceSampler

TEST(TraceSamplerTest, DeterministicUnderFixedSeed) {
  const TraceSampler first{0.25, 1234};
  const TraceSampler second{0.25, 1234};
  const TraceSampler other_seed{0.25, 99};
  int sampled = 0, diverged = 0;
  for (uint64_t id = 1; id <= 4096; ++id) {
    const bool decision = first.Sample(id);
    // The decision is a pure function of (id, seed): any process with
    // the same seed reaches the same verdict for the same trace.
    EXPECT_EQ(decision, second.Sample(id));
    if (decision) ++sampled;
    if (decision != other_seed.Sample(id)) ++diverged;
  }
  // Rate is approximately honored (binomial, 4096 draws at p=.25).
  EXPECT_GT(sampled, 4096 * 0.15);
  EXPECT_LT(sampled, 4096 * 0.35);
  // A different seed samples a genuinely different subset.
  EXPECT_GT(diverged, 0);
}

TEST(TraceSamplerTest, RateEndpointsAreAbsolute) {
  const TraceSampler none{0.0, 7};
  const TraceSampler all{1.0, 7};
  for (uint64_t id = 1; id <= 64; ++id) {
    EXPECT_FALSE(none.Sample(id));
    EXPECT_TRUE(all.Sample(id));
  }
  EXPECT_FALSE(all.Sample(0));  // id 0 = "no trace": never sampled
}

// ---------------------------------------------------------------------
// Span trees + context propagation

TEST(SpanTreeTest, UnsampledRequestContextSuppressesSpans) {
  TraceCollector trace;
  ASSERT_TRUE(trace.installed());
  TraceContext unsampled;
  unsampled.trace_id = NewTraceId();
  unsampled.sampled = false;
  {
    ScopedTraceContext scoped(unsampled);
    EXPECT_FALSE(SpanEnabled());
    Span span("dropped");
    EXPECT_EQ(span.span_id(), 0u);
    EmitSpan("also-dropped", 0, 1);
  }
  EXPECT_EQ(trace.events_recorded(), 0u);

  // Request-free context (trace_id 0) records as before — engine and
  // bench traces are not gated by request sampling.
  EXPECT_TRUE(SpanEnabled());
  { Span span("kept"); }
  EXPECT_EQ(trace.events_recorded(), 1u);
}

/// Drains the collector's export and returns name -> (trace, span,
/// parent) ids parsed from each slice's args (hex, as rendered).
std::map<std::string, std::vector<uint64_t>> SpanIdsByName(
    const TraceCollector& trace) {
  Interner dict;
  const auto parsed = tree::ParseJson(trace.ToChromeJson(), &dict);
  EXPECT_TRUE(parsed.ok()) << parsed.error_message();
  std::map<std::string, std::vector<uint64_t>> out;
  if (!parsed.ok()) return out;
  for (const tree::JsonPtr& ev : parsed.value()->Get("traceEvents")->items()) {
    if (ev->Get("ph")->string_value() != "X") continue;
    const tree::JsonPtr args = ev->Get("args");
    if (args == nullptr) continue;
    auto hex = [&args](const char* key) -> uint64_t {
      const tree::JsonPtr v = args->Get(key);
      if (v == nullptr) return 0;
      return std::strtoull(std::string(v->string_value()).c_str(), nullptr,
                           16);
    };
    out[std::string(ev->Get("name")->string_value())] = {
        hex("trace_id"), hex("span_id"), hex("parent_id")};
  }
  return out;
}

TEST(SpanTreeTest, NestedSpansFormParentChildChain) {
  TraceCollector trace;
  ASSERT_TRUE(trace.installed());
  TraceContext ctx;
  ctx.trace_id = 0xabcull;
  ctx.span_id = 0x111ull;  // pre-allocated request root span
  ctx.sampled = true;
  {
    ScopedTraceContext scoped(ctx);
    Span outer("outer");
    { Span inner("inner"); }
    EmitSpanAs(ctx, /*parent_id=*/0, "root", TraceNowNs(), 1);
  }
  const auto spans = SpanIdsByName(trace);
  ASSERT_EQ(spans.size(), 3u);
  const auto& root = spans.at("root");
  const auto& outer = spans.at("outer");
  const auto& inner = spans.at("inner");
  for (const auto* s : {&root, &outer, &inner}) {
    EXPECT_EQ((*s)[0], 0xabcull);  // one trace groups the whole tree
  }
  EXPECT_EQ(root[1], 0x111ull);     // EmitSpanAs keeps the handed-out id
  EXPECT_EQ(root[2], 0u);           // ...as a root span
  EXPECT_EQ(outer[2], root[1]);     // outer nests under the root
  EXPECT_EQ(inner[2], outer[1]);    // inner nests under outer
}

TEST(SpanTreeTest, ContextPropagatesAcrossThreadPoolHandoff) {
  // The serve-worker pattern under TSan: a context created on this
  // thread rides into pool tasks via ScopedTraceContext, and the spans
  // those tasks emit parent correctly back to the submitting span.
  TraceCollector trace;
  ASSERT_TRUE(trace.installed());
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = NewSpanId();
  ctx.sampled = true;
  {
    ScopedTraceContext scoped(ctx);
    const TraceContext handoff = CurrentTraceContext();
    engine::ThreadPool pool(3);
    for (int i = 0; i < 24; ++i) {
      pool.Submit([handoff] {
        ScopedTraceContext worker_scope(handoff);
        Span span("pool-task");
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(trace.events_recorded(), 24u);

  Interner dict;
  const auto parsed = tree::ParseJson(trace.ToChromeJson(), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const std::string want_trace = TraceIdHex(ctx.trace_id);
  const std::string want_parent = TraceIdHex(ctx.span_id);
  int slices = 0;
  for (const tree::JsonPtr& ev : parsed.value()->Get("traceEvents")->items()) {
    if (ev->Get("ph")->string_value() != "X") continue;
    ++slices;
    const tree::JsonPtr args = ev->Get("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->Get("trace_id")->string_value(), want_trace);
    EXPECT_EQ(args->Get("parent_id")->string_value(), want_parent);
  }
  EXPECT_EQ(slices, 24);
}

TEST(TraceCollectorTest, ToChromeJsonLimitKeepsMostRecent) {
  TraceCollector trace;
  ASSERT_TRUE(trace.installed());
  for (int i = 0; i < 10; ++i) {
    Span span("burst");
  }
  EXPECT_EQ(trace.events_recorded(), 10u);
  Interner dict;
  const auto parsed = tree::ParseJson(trace.ToChromeJson(/*limit=*/3), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  int slices = 0;
  for (const tree::JsonPtr& ev : parsed.value()->Get("traceEvents")->items()) {
    if (ev->Get("ph")->string_value() == "X") ++slices;
  }
  EXPECT_EQ(slices, 3);
  const tree::JsonPtr other = parsed.value()->Get("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Get("events_shown")->number_value(), 3.0);
}

TEST(TraceCollectorTest, ExportsDropAccountingToMetricRegistry) {
  // While installed, the collector is a registry collector: span loss
  // is visible on /metrics, not only in the exported trace file.
  std::string text;
  {
    TraceCollector trace;
    ASSERT_TRUE(trace.installed());
    { Span span("metered"); }
    text = MetricRegistry::Global().RenderOpenMetrics();
    EXPECT_NE(text.find("rwdt_trace_spans_recorded_total 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("rwdt_trace_spans_dropped_total 0"),
              std::string::npos);
    EXPECT_NE(text.find("rwdt_trace_threads 1"), std::string::npos);
    EXPECT_NE(text.find("rwdt_trace_ring_occupancy"), std::string::npos);
  }
  // Uninstalled: the families disappear from the scrape.
  text = MetricRegistry::Global().RenderOpenMetrics();
  EXPECT_EQ(text.find("rwdt_trace_spans_recorded"), std::string::npos);
}

// ---------------------------------------------------------------------
// Logging

class CaptureSink : public LogSink {
 public:
  void Write(const LogRecord& record) override { records.push_back(record); }
  std::vector<LogRecord> records;
};

TEST(LogTest, LevelGateSkipsDisabledStatements) {
  auto sink = std::make_shared<CaptureSink>();
  Logger::Global().SetSinks({sink});
  Logger::Global().set_min_level(LogLevel::kWarn);
  int evals = 0;
  auto expensive = [&evals]() {
    ++evals;
    return 42;
  };
  RWDT_LOG(INFO) << "suppressed " << expensive();
  EXPECT_EQ(evals, 0);  // operands of a disabled statement never run
  EXPECT_TRUE(sink->records.empty());

  RWDT_LOG(ERROR) << "kept " << expensive();
  EXPECT_EQ(evals, 1);
  ASSERT_EQ(sink->records.size(), 1u);
  const LogRecord& rec = sink->records[0];
  EXPECT_EQ(rec.level, LogLevel::kError);
  EXPECT_EQ(rec.message, "kept 42");
  EXPECT_NE(std::string(rec.file).find("obs_test.cc"), std::string::npos);
  EXPECT_GT(rec.line, 0);
  EXPECT_GT(rec.unix_micros, 0);
  Logger::Global().ResetToDefault();
}

TEST(LogTest, JsonLinesSinkEmitsParseableRecords) {
  const std::string path = "obs_test_log.jsonl";
  {
    auto opened = JsonLinesSink::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.error_message();
    Logger::Global().SetSinks({std::move(opened).value()});
    Logger::Global().set_min_level(LogLevel::kDebug);
    RWDT_LOG(INFO) << "hello \"quoted\"\nsecond line";
    RWDT_LOG(DEBUG) << "debug record";
    Logger::Global().ResetToDefault();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);

  Interner dict;
  const auto first = tree::ParseJson(lines[0], &dict);
  ASSERT_TRUE(first.ok()) << first.error_message();
  EXPECT_EQ(first.value()->Get("level")->string_value(), "info");
  EXPECT_EQ(first.value()->Get("msg")->string_value(),
            "hello \"quoted\"\nsecond line");
  EXPECT_GT(first.value()->Get("ts_us")->number_value(), 0.0);
  const auto second = tree::ParseJson(lines[1], &dict);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()->Get("level")->string_value(), "debug");
}

// ---------------------------------------------------------------------
// ProgressReporter

TEST(ProgressTest, TicksAndRunReportMatchFinalSnapshot) {
  engine::Metrics metrics;
  metrics.AddEntries(123);
  metrics.AddAnalyzed(45);
  metrics.AddHits(10);
  metrics.AddMisses(5);

  const std::string path = "obs_test_report.json";
  ProgressOptions popts;
  popts.interval_ms = 10;
  popts.log_progress = false;  // keep test output quiet
  popts.report_path = path;
  popts.label = "obs-test";
  ASSERT_TRUE(popts.Validate().ok());
  ASSERT_TRUE(popts.enabled());

  ProgressReporter reporter([&metrics] { return metrics.Snapshot(); },
                            popts);
  // Let a few ticks elapse, then bump a counter the report must see.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  metrics.AddEntries(1);
  reporter.Stop();
  EXPECT_GE(reporter.ticks(), 1u);

  // The run report's counters are exactly the final snapshot's.
  Interner dict;
  const auto parsed = tree::ParseJson(reporter.report_json(), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const tree::JsonPtr root = parsed.value();
  EXPECT_EQ(root->Get("label")->string_value(), "obs-test");
  EXPECT_GE(root->Get("elapsed_ms")->number_value(), 0.0);
  EXPECT_EQ(root->Get("ticks")->number_value(),
            static_cast<double>(reporter.ticks()));
  const tree::JsonPtr m = root->Get("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->Get("entries_processed")->number_value(), 124.0);
  EXPECT_EQ(m->Get("queries_analyzed")->number_value(), 45.0);
  EXPECT_EQ(m->Get("cache_hits")->number_value(), 10.0);
  EXPECT_EQ(m->Get("cache_misses")->number_value(), 5.0);

  // The report file holds the same JSON document.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(file_contents.str(), reporter.report_json() + "\n");
}

TEST(ProgressTest, DisabledByDefault) {
  ProgressOptions popts;
  EXPECT_FALSE(popts.enabled());
  EXPECT_TRUE(popts.Validate().ok());
  popts.interval_ms = 3600 * 1000 + 1;
  EXPECT_FALSE(popts.Validate().ok());
}

TEST(ProgressTest, StopIsIdempotentWithoutThread) {
  engine::Metrics metrics;
  ProgressOptions popts;  // interval 0: no background thread
  ProgressReporter reporter([&metrics] { return metrics.Snapshot(); },
                            popts);
  reporter.Stop();
  reporter.Stop();
  EXPECT_EQ(reporter.ticks(), 0u);
  EXPECT_FALSE(reporter.report_json().empty());  // still rendered
}

// ---------------------------------------------------------------------
// IngestReport::ToJson

TEST(ObsIntegrationTest, IngestReportToJsonParses) {
  // TSV input whose source column needs escaping, plus a corrupt line.
  std::stringstream in(
      "s\"rc\tSELECT ?x WHERE { ?s ?p ?x }\n"
      "s\"rc\tnot a query at all ((\n");
  ingest::IngestOptions opts;
  opts.format = ingest::LogFormat::kTsv;
  opts.engine.threads = 1;
  const auto r = ingest::IngestStream(in, opts);
  ASSERT_TRUE(r.ok()) << r.error_message();
  const ingest::IngestReport& report = r.value();
  EXPECT_EQ(report.lines_read, 2u);
  ASSERT_EQ(report.per_source.count("s\"rc"), 1u);

  Interner dict;
  const auto parsed = tree::ParseJson(report.ToJson(), &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const tree::JsonPtr root = parsed.value();
  const tree::JsonPtr study = root->Get("study");
  ASSERT_NE(study, nullptr);
  EXPECT_EQ(study->Get("total")->number_value(),
            static_cast<double>(report.study.total));
  EXPECT_EQ(root->Get("lines_read")->number_value(), 2.0);
  const tree::JsonPtr per_source = root->Get("per_source");
  ASSERT_NE(per_source, nullptr);
  EXPECT_NE(per_source->Get("s\"rc"), nullptr);  // key escaped, then
                                                 // un-escaped by parser
  ASSERT_NE(root->Get("metrics"), nullptr);
}

}  // namespace
}  // namespace rwdt::obs
