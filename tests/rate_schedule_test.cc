// Unit tests for the deterministic rate-schedule module behind
// tools/loadgen: profile shapes, closed-form means, and seeded
// arrival-sequence reproducibility.

#include "loggen/rate_schedule.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rwdt::loggen {
namespace {

TEST(RateScheduleTest, ConstantProfile) {
  RateScheduleOptions opts;
  opts.profile = RateProfile::kConstant;
  opts.base_qps = 250;
  ASSERT_TRUE(opts.Validate().ok());
  const RateSchedule s(opts);
  EXPECT_DOUBLE_EQ(s.RateAt(0), 250);
  EXPECT_DOUBLE_EQ(s.RateAt(123.4), 250);
  EXPECT_DOUBLE_EQ(s.MeanRate(), 250);
  EXPECT_DOUBLE_EQ(s.PeakRate(), 250);
}

TEST(RateScheduleTest, DiurnalProfileSwingsAroundBase) {
  RateScheduleOptions opts;
  opts.profile = RateProfile::kDiurnal;
  opts.base_qps = 100;
  opts.period_s = 40;
  opts.amplitude = 0.5;
  ASSERT_TRUE(opts.Validate().ok());
  const RateSchedule s(opts);
  EXPECT_NEAR(s.RateAt(0), 100, 1e-9);           // sin(0) = 0
  EXPECT_NEAR(s.RateAt(10), 150, 1e-9);          // quarter period: peak
  EXPECT_NEAR(s.RateAt(30), 50, 1e-9);           // three quarters: trough
  EXPECT_NEAR(s.RateAt(40), 100, 1e-6);          // wraps
  EXPECT_DOUBLE_EQ(s.MeanRate(), 100);
  EXPECT_DOUBLE_EQ(s.PeakRate(), 150);
}

TEST(RateScheduleTest, BurstProfileIsSquareWave) {
  RateScheduleOptions opts;
  opts.profile = RateProfile::kBurst;
  opts.base_qps = 50;
  opts.burst_qps = 450;
  opts.period_s = 10;
  opts.burst_duty = 0.2;
  ASSERT_TRUE(opts.Validate().ok());
  const RateSchedule s(opts);
  EXPECT_DOUBLE_EQ(s.RateAt(0.0), 450);   // high phase: [0, 2)
  EXPECT_DOUBLE_EQ(s.RateAt(1.9), 450);
  EXPECT_DOUBLE_EQ(s.RateAt(2.1), 50);    // low phase
  EXPECT_DOUBLE_EQ(s.RateAt(9.9), 50);
  EXPECT_DOUBLE_EQ(s.RateAt(10.5), 450);  // next period
  EXPECT_DOUBLE_EQ(s.MeanRate(), 0.2 * 450 + 0.8 * 50);
  EXPECT_DOUBLE_EQ(s.PeakRate(), 450);
}

TEST(RateScheduleTest, ValidationRejectsNonsense) {
  RateScheduleOptions opts;
  opts.base_qps = 0;
  EXPECT_FALSE(opts.Validate().ok());

  opts = {};
  opts.profile = RateProfile::kDiurnal;
  opts.amplitude = 1.5;
  EXPECT_FALSE(opts.Validate().ok());

  opts = {};
  opts.profile = RateProfile::kBurst;
  opts.burst_duty = 0;
  EXPECT_FALSE(opts.Validate().ok());

  opts = {};
  opts.profile = RateProfile::kBurst;
  opts.period_s = -1;
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(RateScheduleTest, ParseProfileNames) {
  EXPECT_EQ(ParseRateProfile("constant").value(), RateProfile::kConstant);
  EXPECT_EQ(ParseRateProfile("diurnal").value(), RateProfile::kDiurnal);
  EXPECT_EQ(ParseRateProfile("burst").value(), RateProfile::kBurst);
  EXPECT_FALSE(ParseRateProfile("sawtooth").ok());
  for (RateProfile p : {RateProfile::kConstant, RateProfile::kDiurnal,
                        RateProfile::kBurst}) {
    EXPECT_EQ(ParseRateProfile(RateProfileName(p)).value(), p);
  }
}

TEST(RateScheduleTest, ArrivalsMatchMeanRate) {
  RateScheduleOptions opts;
  opts.profile = RateProfile::kConstant;
  opts.base_qps = 500;
  const RateSchedule s(opts);
  const auto arrivals = GenerateArrivals(s, 20.0, /*seed=*/42);
  // Poisson(10000): 5 sigma is ~500.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000, 500);
  // Strictly increasing, inside the horizon.
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], 0);
    EXPECT_LT(arrivals[i], 20.0);
    if (i > 0) EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
}

TEST(RateScheduleTest, ArrivalsAreDeterministicInSeed) {
  RateScheduleOptions opts;
  opts.profile = RateProfile::kDiurnal;
  opts.base_qps = 200;
  opts.period_s = 5;
  const RateSchedule s(opts);
  const auto a = GenerateArrivals(s, 10.0, 7);
  const auto b = GenerateArrivals(s, 10.0, 7);
  const auto c = GenerateArrivals(s, 10.0, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RateScheduleTest, BurstArrivalsConcentrateInHighPhase) {
  RateScheduleOptions opts;
  opts.profile = RateProfile::kBurst;
  opts.base_qps = 20;
  opts.burst_qps = 980;
  opts.period_s = 10;
  opts.burst_duty = 0.1;  // high phase: first second of each period
  const RateSchedule s(opts);
  const auto arrivals = GenerateArrivals(s, 50.0, 3);
  size_t high = 0;
  for (const double t : arrivals) {
    if (std::fmod(t, 10.0) < 1.0) high++;
  }
  // Expected split: 98 high vs 18 low per period — high phase must
  // dominate overwhelmingly.
  ASSERT_GT(arrivals.size(), 100u);
  EXPECT_GT(static_cast<double>(high) / arrivals.size(), 0.7);
}

TEST(RateScheduleTest, EmptyHorizonYieldsNoArrivals) {
  const RateSchedule s(RateScheduleOptions{});
  EXPECT_TRUE(GenerateArrivals(s, 0, 1).empty());
  EXPECT_TRUE(GenerateArrivals(s, -5, 1).empty());
}

}  // namespace
}  // namespace rwdt::loggen
