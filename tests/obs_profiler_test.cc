// Tests for the sampling profiler (obs/profiler.h) and the process
// footprint collector (obs/proc_stats.h): collapsed-format golden
// output, deterministic symbolization of a known local frame,
// ring-overwrite loss accounting surfaced on /metrics, a multi-thread
// capture smoke (TSan-clean by construction: the handler writes relaxed
// atomics into pre-allocated rings), the process-global capture lock,
// the off-CPU dimension, and the /profilez handler contract.

#include "obs/profiler.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/proc_stats.h"
#include "obs/registry.h"
#include "serve/http_server.h"

namespace rwdt::obs {

// ThreadSanitizer defers async signal delivery to its next interceptor
// call, so under TSan every SIGPROF stack collapses onto the interceptor
// frame and frame-NAME assertions are meaningless. The capture/ring/stop
// machinery is still fully exercised — which is what a TSan run is for —
// so only the symbolization expectations are gated on this.
#if defined(__SANITIZE_THREAD__)
#define RWDT_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RWDT_TEST_UNDER_TSAN 1
#endif
#endif
#ifndef RWDT_TEST_UNDER_TSAN
#define RWDT_TEST_UNDER_TSAN 0
#endif
constexpr bool kStacksAreUnbiased = !RWDT_TEST_UNDER_TSAN;

/// A CPU anchor the symbolization tests look for by name. NOINLINE so
/// the frame exists; the volatile sink keeps the loop from folding.
/// External linkage on purpose: -rdynamic exports only global symbols
/// to .dynsym, and dladdr cannot name anonymous-namespace statics.
__attribute__((noinline)) uint64_t ProfilerTestBurnAnchor(uint64_t iters) {
  volatile uint64_t acc = 1;
  for (uint64_t i = 0; i < iters; ++i) acc = acc * 2862933555777941757ULL + i;
  return acc;
}

namespace {

/// Burns process CPU until `deadline` (steady clock), in anchor-sized
/// bites so SIGPROF always lands with the anchor on the stack.
void BurnUntil(std::chrono::steady_clock::time_point deadline) {
  while (std::chrono::steady_clock::now() < deadline) {
    ProfilerTestBurnAnchor(200000);
  }
}

bool HasFrame(const Profile& profile, const std::string& needle) {
  for (const ProfileStack& stack : profile.stacks) {
    for (const std::string& frame : stack.frames) {
      if (frame.find(needle) != std::string::npos) return true;
    }
  }
  return false;
}

TEST(ProfileFormatTest, CollapsedGolden) {
  // Hand-built profile: format must be exact — flamegraph.pl parses it.
  Profile profile;
  profile.hz = 100;
  profile.stacks.push_back({{"main", "Outer()", "Inner()"}, 40});
  profile.stacks.push_back({{"main", "Other()"}, 2});
  profile.off_cpu.push_back({"serve.queue_wait", 0.5, 50});
  EXPECT_EQ(profile.ToCollapsed(),
            "main;Outer();Inner() 40\n"
            "main;Other() 2\n"
            "[offcpu];serve.queue_wait 50\n");
}

TEST(ProfileFormatTest, CollapsedSanitizesSeparators) {
  // ';' inside a symbol would split the frame for flamegraph.pl; the
  // exporter must have replaced it before ToCollapsed is called — but a
  // hand-built stack goes out verbatim, so this documents the contract
  // at the formatting layer: no extra escaping, one line per stack.
  Profile profile;
  profile.stacks.push_back({{"a", "b"}, 1});
  EXPECT_EQ(profile.ToCollapsed(), "a;b 1\n");
}

TEST(ProfileFormatTest, JsonIsSelfDescribing) {
  Profile profile;
  profile.hz = 99;
  profile.duration_s = 1.5;
  profile.samples = 7;
  profile.samples_dropped = 2;
  profile.stacks.push_back({{"main", "Work()"}, 7});
  profile.off_cpu.push_back({"q", 0.25, 25});
  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"hz\":99"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples_dropped\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("Work()"), std::string::npos) << json;
  EXPECT_NE(json.find("\"off_cpu\""), std::string::npos) << json;
}

// Runs FIRST among the capturing tests: ring-pool geometry is fixed by
// the first Start of the process, so the tiny ring that makes overwrite
// certain must be requested before any other capture. Later tests run
// with this 64-slot ring — harmless, since each only needs the most
// recent samples.
TEST(ProfilerTest, RingOverwriteSurfacesAsDroppedSamples) {
  if (!ProfilerSupported()) GTEST_SKIP() << "no backtrace(3) here";
  ProfileOptions options;
  options.hz = 997;  // kernel-tick rounding still yields >100 samples/s
  options.ring_capacity = 64;
  ASSERT_TRUE(StartProfiling(options).ok());
  BurnUntil(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(900));
  auto result = StopProfiling();
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_GT(result.value().samples, 64u);
  EXPECT_GT(result.value().samples_dropped, 0u)
      << "samples=" << result.value().samples;
  // Loss accounting must be visible to a scrape, not just the caller.
  const std::string metrics = MetricRegistry::Global().RenderOpenMetrics();
  EXPECT_NE(metrics.find("rwdt_profile_samples_dropped_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("rwdt_profile_captures_total"), std::string::npos);
}

TEST(ProfilerTest, CaptureSymbolizesKnownFrame) {
  if (!ProfilerSupported()) GTEST_SKIP() << "no backtrace(3) here";
  ProfileOptions options;
  options.hz = 500;  // plenty of samples from a short window
  ASSERT_TRUE(StartProfiling(options).ok());
  BurnUntil(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(200));
  auto result = StopProfiling();
  ASSERT_TRUE(result.ok()) << result.status().message();
  const Profile& profile = result.value();
  EXPECT_GT(profile.samples, 10u);
  // The anchor must appear by name: dladdr + demangling worked, and the
  // handler frames were stripped (the anchor is a leaf, not the
  // handler). Root-first order puts main-ish frames at index 0.
  if (kStacksAreUnbiased) {
    EXPECT_TRUE(HasFrame(profile, "ProfilerTestBurnAnchor"))
        << profile.ToCollapsed();
  }
  ASSERT_FALSE(profile.stacks.empty());
  EXPECT_FALSE(HasFrame(profile, "RwdtProfileSignalHandler"))
      << profile.ToCollapsed();
}

TEST(ProfilerTest, FourThreadCaptureSmoke) {
  if (!ProfilerSupported()) GTEST_SKIP() << "no backtrace(3) here";
  ProfileOptions options;
  options.hz = 250;
  ASSERT_TRUE(StartProfiling(options).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) workers.emplace_back(BurnUntil, deadline);
  for (auto& worker : workers) worker.join();
  auto result = StopProfiling();
  ASSERT_TRUE(result.ok()) << result.status().message();
  // ITIMER_PROF accrues across all four burners, so the sample count
  // reflects ~4 busy cores; all we assert is that multi-thread delivery
  // captured into the rings without loss of the whole run.
  EXPECT_GT(result.value().samples, 20u);
  if (kStacksAreUnbiased) {
    EXPECT_TRUE(HasFrame(result.value(), "ProfilerTestBurnAnchor"));
  }
}

TEST(ProfilerTest, SecondCaptureIsRefused) {
  if (!ProfilerSupported()) GTEST_SKIP() << "no backtrace(3) here";
  ASSERT_TRUE(StartProfiling().ok());
  EXPECT_TRUE(ProfilingActive());
  const Status second = StartProfiling();
  EXPECT_EQ(second.code(), Code::kResourceExhausted)
      << second.message();
  EXPECT_TRUE(StopProfiling().ok());
  EXPECT_FALSE(ProfilingActive());
  // And stopping again is an error, not a crash.
  EXPECT_FALSE(StopProfiling().ok());
}

TEST(ProfilerTest, OffCpuSourceDeltaIsReported) {
  if (!ProfilerSupported()) GTEST_SKIP() << "no backtrace(3) here";
  std::atomic<double> total{10.0};
  const uint64_t id = AddProfileOffCpuSource(
      "test.wait", [&total] { return total.load(); });
  ProfileOptions options;
  options.hz = 100;
  ASSERT_TRUE(StartProfiling(options).ok());
  total.store(12.5);  // 2.5 s of simulated waiting during the window
  BurnUntil(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(60));
  auto result = StopProfiling();
  RemoveProfileOffCpuSource(id);
  ASSERT_TRUE(result.ok()) << result.status().message();
  bool found = false;
  for (const OffCpuEntry& entry : result.value().off_cpu) {
    if (entry.name != "test.wait") continue;
    found = true;
    EXPECT_NEAR(entry.seconds, 2.5, 1e-9);
    EXPECT_EQ(entry.samples, static_cast<uint64_t>(2.5 * 100));
  }
  EXPECT_TRUE(found);
  EXPECT_NE(result.value().ToCollapsed().find("[offcpu];test.wait 250"),
            std::string::npos)
      << result.value().ToCollapsed();
}

serve::HttpRequest ProfilezRequest(const std::string& query) {
  serve::HttpRequest request;
  request.method = "GET";
  request.path = "/profilez";
  request.query = query;
  return request;
}

bool HasHeader(const serve::HttpResponse& response, const std::string& key,
               const std::string& value) {
  for (const auto& [k, v] : response.extra_headers) {
    if (k == key && v == value) return true;
  }
  return false;
}

TEST(ProfilezTest, RejectsBadParameters) {
  EXPECT_EQ(HandleProfilez(ProfilezRequest("format=xml")).status, 400);
  EXPECT_EQ(HandleProfilez(ProfilezRequest("seconds=abc")).status, 400);
  EXPECT_EQ(HandleProfilez(ProfilezRequest("hz=0")).status, 400);
}

TEST(ProfilezTest, CapturesAndSetsNoStore) {
  if (!ProfilerSupported()) GTEST_SKIP() << "no backtrace(3) here";
  // Keep some CPU burning so the short window has samples to report.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    while (!stop.load()) ProfilerTestBurnAnchor(100000);
  });
  const serve::HttpResponse collapsed =
      HandleProfilez(ProfilezRequest("seconds=0.2&hz=400"));
  EXPECT_EQ(collapsed.status, 200) << collapsed.body;
  EXPECT_NE(collapsed.content_type.find("charset=utf-8"), std::string::npos);
  EXPECT_TRUE(HasHeader(collapsed, "Cache-Control", "no-store"));
  if (kStacksAreUnbiased) {
    EXPECT_NE(collapsed.body.find("ProfilerTestBurnAnchor"), std::string::npos)
        << collapsed.body;
  }

  const serve::HttpResponse json =
      HandleProfilez(ProfilezRequest("seconds=0.1&hz=200&format=json"));
  stop.store(true);
  burner.join();
  EXPECT_EQ(json.status, 200) << json.body;
  EXPECT_NE(json.content_type.find("application/json"), std::string::npos);
  EXPECT_TRUE(HasHeader(json, "Cache-Control", "no-store"));
  EXPECT_NE(json.body.find("\"stacks\""), std::string::npos) << json.body;
}

TEST(ProcStatsTest, SampleReportsLiveProcess) {
  const ProcStatsSample sample = SampleProcStats();
  EXPECT_TRUE(sample.has_rusage);
  EXPECT_GT(sample.max_resident_bytes, 0);
#if defined(__linux__)
  EXPECT_TRUE(sample.has_statm);
  EXPECT_TRUE(sample.has_stat);
  EXPECT_GT(sample.resident_bytes, 0);
  EXPECT_GE(sample.virtual_bytes, sample.resident_bytes);
  EXPECT_GE(sample.threads, 1);
#endif
}

TEST(ProcStatsTest, FamiliesCarryExpectedNames) {
  ProcStatsSample sample;
  sample.has_statm = sample.has_stat = sample.has_rusage = sample.has_io =
      true;
  sample.resident_bytes = 1;
  std::vector<FamilySnapshot> families;
  AppendProcStatsFamilies(sample, &families);
  std::vector<std::string> names;
  for (const FamilySnapshot& family : families) names.push_back(family.name);
  auto has = [&](const char* name) {
    for (const std::string& n : names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("rwdt_proc_resident_bytes"));
  EXPECT_TRUE(has("rwdt_proc_virtual_bytes"));
  EXPECT_TRUE(has("rwdt_proc_max_resident_bytes"));
  EXPECT_TRUE(has("rwdt_proc_threads"));
  EXPECT_TRUE(has("rwdt_proc_cpu_seconds"));
  EXPECT_TRUE(has("rwdt_proc_page_faults"));
  EXPECT_TRUE(has("rwdt_proc_context_switches"));
  EXPECT_TRUE(has("rwdt_proc_io_bytes"));
}

TEST(ProcStatsTest, InstallIsProcessUnique) {
  ProcStatsCollector first;
  ProcStatsCollector second;
  // Exactly one instance may register: a scrape must never see
  // duplicate rwdt_proc_* series. (The engine may have installed one
  // already in this process, in which case neither of these wins —
  // the invariant is "at most one", which `second` can never be.)
  EXPECT_FALSE(second.installed() && first.installed());
  // Count only sample lines ("\nrwdt_proc_..."), not # HELP / # TYPE.
  const std::string metrics = MetricRegistry::Global().RenderOpenMetrics();
  const std::string sample_line = "\nrwdt_proc_resident_bytes ";
  size_t count = 0;
  for (size_t at = metrics.find(sample_line); at != std::string::npos;
       at = metrics.find(sample_line, at + 1)) {
    ++count;
  }
  EXPECT_LE(count, 1u) << "duplicate rwdt_proc_resident_bytes series";
}

}  // namespace
}  // namespace rwdt::obs
