#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/interner.h"
#include "loggen/corpus_gen.h"
#include "loggen/log_text.h"
#include "loggen/sparql_gen.h"
#include "schema/dtd.h"
#include "sparql/parser.h"
#include "tree/xml.h"
#include "xpath/xpath.h"

namespace rwdt::loggen {
namespace {

TEST(SparqlGenTest, DeterministicForFixedSeed) {
  SourceProfile p = ExampleProfile(200);
  auto a = GenerateLog(p, 42);
  auto b = GenerateLog(p, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
  auto c = GenerateLog(p, 43);
  size_t same = 0;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    same += a[i].text == c[i].text;
  }
  EXPECT_LT(same, a.size() / 2);
}

TEST(SparqlGenTest, IntendedValidQueriesParse) {
  SourceProfile p = ExampleProfile(600);
  Interner dict;
  size_t valid = 0, invalid_intent = 0, invalid_parse_ok = 0;
  for (const auto& entry : GenerateLog(p, 7)) {
    auto q = sparql::ParseSparql(entry.text, &dict);
    if (entry.intended_valid) {
      EXPECT_TRUE(q.ok()) << entry.text << "\n" << q.status().ToString();
      ++valid;
    } else {
      ++invalid_intent;
      if (q.ok()) ++invalid_parse_ok;
    }
  }
  EXPECT_GT(valid, 500u);
  EXPECT_GT(invalid_intent, 0u);
  // Most corruptions actually break parsing.
  EXPECT_LT(invalid_parse_ok * 2, invalid_intent + 1);
}

TEST(SparqlGenTest, DuplicateFactorRoughlyHolds) {
  SourceProfile p = ExampleProfile(4000);
  p.duplicate_factor = 4.0;
  p.invalid_rate = 0;
  std::set<std::string> unique;
  size_t total = 0;
  for (const auto& e : GenerateLog(p, 9)) {
    unique.insert(e.text);
    ++total;
  }
  const double observed =
      static_cast<double>(total) / static_cast<double>(unique.size());
  EXPECT_GT(observed, 2.5);
  EXPECT_LT(observed, 6.0);
}

TEST(SparqlGenTest, Table2ProfilesScale) {
  auto profiles = Table2Profiles(/*scale=*/20000);
  ASSERT_EQ(profiles.size(), 17u);
  // Relative sizes preserved: WikiRobot/OK is the largest.
  uint64_t max_total = 0;
  std::string max_name;
  for (const auto& p : profiles) {
    if (p.total_queries > max_total) {
      max_total = p.total_queries;
      max_name = p.name;
    }
  }
  EXPECT_EQ(max_name, "WikiRobot/OK");
  // Wikidata flags set.
  for (const auto& p : profiles) {
    if (p.name.substr(0, 4) == "Wiki") {
      EXPECT_TRUE(p.wikidata_like);
    }
  }
}

TEST(DtdGenTest, CorpusMatchesKnobs) {
  Interner dict;
  DtdCorpusOptions options;
  options.num_dtds = 60;
  auto corpus = GenerateDtdCorpus(options, &dict, 11);
  ASSERT_EQ(corpus.size(), 60u);
  size_t recursive = 0;
  for (const auto& dtd : corpus) {
    EXPECT_FALSE(dtd.rules.empty());
    EXPECT_FALSE(dtd.start.empty());
    if (schema::IsRecursive(dtd)) ++recursive;
  }
  // ~55% recursive requested (Choi saw 35/60).
  EXPECT_GT(recursive, 20u);
  EXPECT_LT(recursive, 50u);
}

TEST(DtdGenTest, GeneratedTreesValidate) {
  Interner dict;
  DtdCorpusOptions options;
  options.num_dtds = 10;
  auto corpus = GenerateDtdCorpus(options, &dict, 5);
  Rng rng(17);
  size_t validated = 0;
  for (const auto& dtd : corpus) {
    schema::DtdValidator validator(dtd);
    for (int i = 0; i < 3; ++i) {
      tree::Tree t = GenerateValidTree(dtd, &dict, rng);
      if (t.empty()) continue;
      EXPECT_TRUE(validator.Validate(t).valid);
      ++validated;
    }
  }
  EXPECT_GT(validated, 10u);
}

TEST(XmlGenTest, CorruptionRateMatches) {
  Interner dict;
  XmlCorpusOptions options;
  options.num_documents = 400;
  options.p_corrupt = 0.15;
  auto corpus = GenerateXmlCorpus(options, &dict, 3);
  ASSERT_EQ(corpus.size(), 400u);
  size_t intended_bad = 0, parsed_ok = 0, intended_bad_but_ok = 0;
  Interner dict2;
  for (const auto& doc : corpus) {
    auto parse = tree::ParseXml(doc.text, &dict2);
    if (!doc.intended_well_formed) {
      ++intended_bad;
      if (parse.ok()) ++intended_bad_but_ok;
    } else {
      EXPECT_TRUE(parse.ok()) << doc.text.substr(0, 120);
    }
    if (parse.ok()) ++parsed_ok;
  }
  EXPECT_GT(intended_bad, 30u);
  // Most injected corruptions are detected (a truncation can by chance
  // stay well-formed).
  EXPECT_LT(intended_bad_but_ok * 4, intended_bad);
  EXPECT_GT(parsed_ok, 300u);
}

TEST(XPathGenTest, QueriesMostlyParse) {
  XPathCorpusOptions options;
  options.num_queries = 500;
  auto corpus = GenerateXPathCorpus(options, 23);
  ASSERT_EQ(corpus.size(), 500u);
  Interner dict;
  size_t ok = 0;
  for (const auto& text : corpus) {
    ok += xpath::ParseXPath(text, &dict).ok();
  }
  EXPECT_EQ(ok, 500u);
}

TEST(LogTextTest, DialectOptionsControlLineEndings) {
  std::vector<LogEntry> log(2);
  log[0].text = "ASK { ?s ?p ?o }";
  log[1].text = "SELECT ?x WHERE { ?x a ?y }";

  const auto render = [&log](bool crlf, bool final_newline) {
    LogTextOptions opts;
    opts.crlf = crlf;
    opts.final_newline = final_newline;
    std::stringstream out;
    WriteLogText(log, out, opts);
    return out.str();
  };

  EXPECT_EQ(render(false, true),
            "ASK { ?s ?p ?o }\nSELECT ?x WHERE { ?x a ?y }\n");
  EXPECT_EQ(render(true, true),
            "ASK { ?s ?p ?o }\r\nSELECT ?x WHERE { ?x a ?y }\r\n");
  EXPECT_EQ(render(false, false),
            "ASK { ?s ?p ?o }\nSELECT ?x WHERE { ?x a ?y }");
  EXPECT_EQ(render(true, false),
            "ASK { ?s ?p ?o }\r\nSELECT ?x WHERE { ?x a ?y }");
}

TEST(LogTextTest, TsvDialectAndTabSanitization) {
  std::vector<LogEntry> log(1);
  log[0].text = "ASK { ?s\t?p ?o }";  // embedded tab must not split
  LogTextOptions opts;
  opts.crlf = true;
  opts.final_newline = false;
  std::stringstream out;
  WriteLogTsv(log, "src", out, opts);
  EXPECT_EQ(out.str(), "src\tASK { ?s ?p ?o }");
}

}  // namespace
}  // namespace rwdt::loggen
