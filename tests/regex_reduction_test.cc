#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/automaton.h"
#include "regex/fragments.h"
#include "regex/glushkov.h"
#include "regex/reduction.h"

namespace rwdt::regex {
namespace {

TEST(DnfTest, SatisfiedBy) {
  // (x1 ∧ ¬x2) ∨ (x2)
  DnfFormula f;
  f.num_vars = 2;
  f.clauses = {{1, -2}, {2}};
  EXPECT_FALSE(f.SatisfiedBy(0b00));  // x1=0,x2=0: clause1 needs x1 -> no
  EXPECT_TRUE(f.SatisfiedBy(0b01));   // x1=1
  EXPECT_TRUE(f.SatisfiedBy(0b10));   // x2=1
  EXPECT_TRUE(f.SatisfiedBy(0b11));
  EXPECT_FALSE(f.IsValidBruteForce());
}

TEST(DnfTest, ValidFormula) {
  // x1 ∨ ¬x1 is valid.
  DnfFormula f;
  f.num_vars = 1;
  f.clauses = {{1}, {-1}};
  EXPECT_TRUE(f.IsValidBruteForce());
}

TEST(ReductionTest, OutputsAreInReAAopt) {
  DnfFormula f;
  f.num_vars = 3;
  f.clauses = {{1, -2}, {2, 3}};
  Interner dict;
  auto inst = EncodeValidityAsContainment(f, &dict);
  const std::set<FactorType> re_a_aopt = {FactorType::kA, FactorType::kAOpt};
  EXPECT_TRUE(InFragment(inst.lhs, re_a_aopt));
  EXPECT_TRUE(InFragment(inst.rhs, re_a_aopt));
}

TEST(ReductionTest, ValidFormulaGivesContainment) {
  DnfFormula f;
  f.num_vars = 2;
  f.clauses = {{1}, {-1}};  // x1 ∨ ¬x1: valid
  Interner dict;
  auto inst = EncodeValidityAsContainment(f, &dict);
  EXPECT_TRUE(IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs)));
}

TEST(ReductionTest, InvalidFormulaBreaksContainment) {
  DnfFormula f;
  f.num_vars = 2;
  f.clauses = {{1}, {-1, 2}};  // fails at x1=0, x2=0
  Interner dict;
  auto inst = EncodeValidityAsContainment(f, &dict);
  Word witness;
  EXPECT_FALSE(IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs), &witness));
  // The counterexample is a word of e1 not matched by e2.
  EXPECT_TRUE(ToNfa(inst.lhs).Accepts(witness));
  EXPECT_FALSE(ToNfa(inst.rhs).Accepts(witness));
}

TEST(ReductionTest, SingleClauseFormulas) {
  {
    DnfFormula f;
    f.num_vars = 1;
    f.clauses = {{1}};  // just x1: not valid
    Interner dict;
    auto inst = EncodeValidityAsContainment(f, &dict);
    EXPECT_FALSE(IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs)));
  }
  {
    DnfFormula f;
    f.num_vars = 1;
    f.clauses = {{}};  // empty clause: satisfied by everything -> valid
    Interner dict;
    auto inst = EncodeValidityAsContainment(f, &dict);
    EXPECT_TRUE(IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs)));
  }
}

// Exhaustive cross-check: every DNF over 2 variables with clauses drawn
// from a fixed pool, reduction result vs brute-force validity.
TEST(ReductionTest, ExhaustiveCrossCheckTwoVars) {
  const std::vector<DnfFormula::Clause> pool = {
      {1}, {-1}, {2}, {-2}, {1, 2}, {1, -2}, {-1, 2}, {-1, -2}};
  // All subsets of size 1..3 of the pool (limited for test time).
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i; j < pool.size(); ++j) {
      DnfFormula f;
      f.num_vars = 2;
      f.clauses = {pool[i]};
      if (j != i) f.clauses.push_back(pool[j]);
      Interner dict;
      auto inst = EncodeValidityAsContainment(f, &dict);
      const bool contained = IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs));
      EXPECT_EQ(contained, f.IsValidBruteForce())
          << "clauses " << i << "," << j;
    }
  }
}

TEST(ReductionTest, ThreeVariableThreeClauseInstance) {
  // Valid: (x1 ∧ x2) ∨ (¬x1) ∨ (x1 ∧ ¬x2).
  DnfFormula valid;
  valid.num_vars = 3;
  valid.clauses = {{1, 2}, {-1}, {1, -2}};
  ASSERT_TRUE(valid.IsValidBruteForce());
  Interner dict;
  auto inst = EncodeValidityAsContainment(valid, &dict);
  EXPECT_TRUE(IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs)));

  // Not valid: flip a literal.
  DnfFormula invalid;
  invalid.num_vars = 3;
  invalid.clauses = {{1, 2}, {-1, 3}, {1, -2}};
  ASSERT_FALSE(invalid.IsValidBruteForce());
  Interner dict2;
  auto inst2 = EncodeValidityAsContainment(invalid, &dict2);
  EXPECT_FALSE(IsContained(ToDfa(inst2.lhs), ToDfa(inst2.rhs)));
}

}  // namespace
}  // namespace rwdt::regex
