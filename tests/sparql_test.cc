#include <gtest/gtest.h>

#include "common/interner.h"
#include "graph/rdf.h"
#include "sparql/analysis.h"
#include "sparql/eval.h"
#include "sparql/parser.h"

namespace rwdt::sparql {
namespace {

class SparqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small social/knowledge graph.
    Add("alice", "knows", "bob");
    Add("bob", "knows", "carol");
    Add("carol", "knows", "dave");
    Add("alice", "age", "\"30\"");
    Add("bob", "age", "\"25\"");
    Add("alice", "name", "\"Alice\"@en");
    Add("alice", "rdf:type", "Person");
    Add("bob", "rdf:type", "Person");
    Add("city1", "rdf:type", "City");
    Add("alice", "livesIn", "city1");
  }

  void Add(const std::string& s, const std::string& p,
           const std::string& o) {
    store_.Add(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
  }

  Query Q(const std::string& text) {
    auto r = ParseSparql(text, &dict_);
    EXPECT_TRUE(r.ok()) << text << "\n" << r.status().ToString();
    return r.ok() ? r.value() : Query{};
  }

  std::vector<Binding> Eval(const std::string& text) {
    Query q = Q(text);
    Evaluator eval(store_, &dict_);
    auto rows = eval.EvalQuery(q);
    EXPECT_TRUE(rows.ok()) << text << "\n" << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Binding>{};
  }

  SymbolId Value(const Binding& mu, const std::string& var) {
    auto it = mu.find(dict_.Intern("?" + var));
    return it == mu.end() ? kInvalidSymbol : it->second;
  }

  Interner dict_;
  graph::TripleStore store_;
};

TEST_F(SparqlTest, BasicSelect) {
  auto rows = Eval("SELECT ?x WHERE { ?x knows bob . }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("alice"));
}

TEST_F(SparqlTest, JoinAcrossTriples) {
  auto rows = Eval("SELECT ?x ?z WHERE { ?x knows ?y . ?y knows ?z . }");
  EXPECT_EQ(rows.size(), 2u);  // alice->carol, bob->dave
}

TEST_F(SparqlTest, SemicolonAndCommaSugar) {
  auto rows =
      Eval("SELECT ?x WHERE { ?x knows bob ; age ?a . }");
  ASSERT_EQ(rows.size(), 1u);
  rows = Eval("SELECT ?x WHERE { alice knows ?x , ?y . }");
  EXPECT_EQ(rows.size(), 1u);  // ?x=bob ?y=bob
}

TEST_F(SparqlTest, FilterComparison) {
  auto rows =
      Eval("SELECT ?x WHERE { ?x age ?a . FILTER(?a > \"26\") }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("alice"));
}

TEST_F(SparqlTest, FilterLang) {
  auto rows = Eval(
      "SELECT ?n WHERE { alice name ?n FILTER(lang(?n)=\"en\") }");
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(SparqlTest, OptionalKeepsUnmatchedLeft) {
  auto rows = Eval(
      "SELECT ?x ?a WHERE { ?x rdf:type Person . "
      "OPTIONAL { ?x age ?a } }");
  EXPECT_EQ(rows.size(), 2u);
  // carol/dave are not Persons; alice and bob both have ages here, so
  // check with a missing attribute instead:
  rows = Eval(
      "SELECT ?x ?c WHERE { ?x rdf:type Person . "
      "OPTIONAL { ?x livesIn ?c } }");
  ASSERT_EQ(rows.size(), 2u);
  size_t with_city = 0;
  for (const auto& mu : rows) {
    if (Value(mu, "c") != kInvalidSymbol) ++with_city;
  }
  EXPECT_EQ(with_city, 1u);  // only alice
}

TEST_F(SparqlTest, UnionCombines) {
  auto rows = Eval(
      "SELECT ?x WHERE { { ?x rdf:type City } UNION "
      "{ ?x rdf:type Person } }");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SparqlTest, MinusRemoves) {
  auto rows = Eval(
      "SELECT ?x WHERE { ?x rdf:type Person MINUS { ?x livesIn ?c } }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("bob"));
}

TEST_F(SparqlTest, NotExistsFilter) {
  auto rows = Eval(
      "SELECT ?x WHERE { ?x rdf:type Person . "
      "FILTER NOT EXISTS { ?x livesIn ?c } }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("bob"));
}

TEST_F(SparqlTest, ValuesInline) {
  auto rows = Eval(
      "SELECT ?x WHERE { VALUES ?x { alice carol } ?x knows ?y . }");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SparqlTest, BindCopiesValue) {
  auto rows = Eval(
      "SELECT ?y WHERE { ?x knows bob . BIND(?x AS ?y) }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "y"), dict_.Intern("alice"));
}

TEST_F(SparqlTest, PropertyPathStar) {
  // Paper's Wikidata example shape: wdt:P31/wdt:P279* -- here knows*.
  auto rows = Eval("SELECT ?x WHERE { alice knows* ?x . }");
  // alice, bob, carol, dave (star includes zero length).
  EXPECT_EQ(rows.size(), 4u);
  rows = Eval("SELECT ?x WHERE { alice knows+ ?x . }");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SparqlTest, PropertyPathSeqAltInverse) {
  auto rows = Eval("SELECT ?x WHERE { alice knows/knows ?x . }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("carol"));
  rows = Eval("SELECT ?x WHERE { bob ^knows ?x . }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("alice"));
  rows = Eval("SELECT ?x WHERE { alice (knows|livesIn) ?x . }");
  EXPECT_EQ(rows.size(), 2u);
  rows = Eval("SELECT ?x WHERE { alice !knows ?x . }");
  // age, name, rdf:type, livesIn edges: 4 objects.
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(SparqlTest, AskQueries) {
  Evaluator eval(store_, &dict_);
  EXPECT_TRUE(eval.Ask(Q("ASK { alice knows bob }")).value());
  EXPECT_FALSE(eval.Ask(Q("ASK { bob knows alice }")).value());
}

TEST_F(SparqlTest, AggregationCountGroup) {
  auto rows = Eval(
      "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x rdf:type ?t } "
      "GROUP BY ?t");
  ASSERT_EQ(rows.size(), 2u);
  // Person group has 2, City group has 1.
  std::set<SymbolId> counts;
  for (const auto& mu : rows) counts.insert(Value(mu, "n"));
  EXPECT_TRUE(counts.count(dict_.Intern("\"2\"")));
  EXPECT_TRUE(counts.count(dict_.Intern("\"1\"")));
}

TEST_F(SparqlTest, OrderLimitOffsetDistinct) {
  auto rows = Eval(
      "SELECT DISTINCT ?x WHERE { ?x knows ?y } ORDER BY ?x LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("alice"));
  rows = Eval(
      "SELECT ?x WHERE { ?x knows ?y } ORDER BY ?x LIMIT 2 OFFSET 2");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "x"), dict_.Intern("carol"));
}

TEST_F(SparqlTest, SubqueryJoins) {
  auto rows = Eval(
      "SELECT ?x WHERE { { SELECT ?x WHERE { ?x knows ?y } } "
      "?x age ?a . }");
  EXPECT_EQ(rows.size(), 2u);  // alice and bob know someone and have ages
}

TEST_F(SparqlTest, PrefixHeadersAndComments) {
  auto rows = Eval(
      "PREFIX wdt: <http://example.org/prop/>\n"
      "# a comment\n"
      "SELECT ?x WHERE { ?x knows bob . } # trailing");
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(SparqlTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x", &dict_).ok());
  EXPECT_FALSE(ParseSparql("FETCH ?x WHERE {}", &dict_).ok());
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?x ?p ?o }", &dict_).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x ?p ?o } junk",
                           &dict_).ok());
}

TEST_F(SparqlTest, WikidataExampleQueryParses) {
  // The paper's "Locations of archaeological sites" query, adapted.
  Query q = Q(
      "SELECT ?label ?coord ?subj WHERE { "
      "?subj wdt:P31/wdt:P279* wd:Q839954 . "
      "?subj wdt:P625 ?coord . "
      "?subj rdfs:label ?label FILTER(lang(?label)=\"en\") }");
  EXPECT_EQ(q.pattern->NumTriplePatterns(), 3u);
  auto features = ExtractFeatures(q);
  EXPECT_TRUE(features.count(Feature::kPropertyPaths));
  EXPECT_TRUE(features.count(Feature::kFilter));
  EXPECT_TRUE(features.count(Feature::kAnd));
}

TEST_F(SparqlTest, FeatureExtraction) {
  Query q = Q(
      "SELECT DISTINCT ?x (AVG(?a) AS ?m) WHERE { "
      "{ ?x knows ?y } UNION { ?x age ?a } "
      "OPTIONAL { ?x livesIn ?c } "
      "SERVICE wikibase:label { ?x name ?n } } "
      "GROUP BY ?x HAVING(?m > \"1\") ORDER BY ?x LIMIT 5 OFFSET 1");
  auto f = ExtractFeatures(q);
  for (Feature expected :
       {Feature::kDistinct, Feature::kAvg, Feature::kUnion,
        Feature::kOptional, Feature::kService, Feature::kGroupBy,
        Feature::kHaving, Feature::kOrderBy, Feature::kLimit,
        Feature::kOffset, Feature::kAnd}) {
    EXPECT_TRUE(f.count(expected)) << FeatureName(expected);
  }
  EXPECT_FALSE(f.count(Feature::kMinus));
}

TEST_F(SparqlTest, OperatorSetClassification) {
  EXPECT_TRUE(ExtractOperatorSet(Q("SELECT ?x WHERE { ?x knows ?y }"))
                  .IsCq());
  EXPECT_TRUE(ExtractOperatorSet(
                  Q("SELECT ?x WHERE { ?x knows ?y . ?y knows ?z }"))
                  .IsCq());
  OperatorSet with_filter = ExtractOperatorSet(
      Q("SELECT ?x WHERE { ?x age ?a FILTER(?a > \"1\") }"));
  EXPECT_FALSE(with_filter.IsCq());
  EXPECT_TRUE(with_filter.IsCqF());
  OperatorSet with_path =
      ExtractOperatorSet(Q("SELECT ?x WHERE { ?x knows+ ?y }"));
  EXPECT_FALSE(with_path.IsCqF());
  EXPECT_TRUE(with_path.IsC2RpqF());
  OperatorSet with_union = ExtractOperatorSet(
      Q("SELECT ?x WHERE { { ?x knows ?y } UNION { ?y knows ?x } }"));
  EXPECT_FALSE(with_union.IsC2RpqF());
}

TEST_F(SparqlTest, WellDesignedness) {
  // Well-designed: optional's right side shares ?x with left.
  EXPECT_TRUE(IsWellDesigned(Q(
      "SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?x age ?a } }")));
  // Not well-designed: ?y in the optional also occurs outside but not in
  // the optional's left side... construct the classic violation:
  EXPECT_FALSE(IsWellDesigned(Q(
      "SELECT ?x WHERE { { ?x knows ?w OPTIONAL { ?x age ?a } } "
      "?z livesIn ?a . }")));
  // Union disqualifies (only And/Filter/Optional allowed).
  EXPECT_FALSE(IsWellDesigned(Q(
      "SELECT ?x WHERE { { ?x knows ?y } UNION { ?x age ?y } }")));
}

TEST_F(SparqlTest, GraphCqFSuitability) {
  EXPECT_TRUE(IsGraphCqF(Q(
      "SELECT ?x WHERE { ?x knows ?y . ?y knows ?z . "
      "FILTER(?x != ?z) }")));
  // Variable predicate used once: still a graph pattern (wildcard).
  EXPECT_TRUE(IsGraphCqF(Q("SELECT ?x WHERE { ?x ?p ?y }")));
  // Predicate variable joined with a node position: not a graph pattern.
  EXPECT_FALSE(IsGraphCqF(Q("SELECT ?x WHERE { ?x ?p ?y . ?p knows ?z }")));
  // Union: not CQ+F at all.
  EXPECT_FALSE(IsGraphCqF(Q(
      "SELECT ?x WHERE { { ?x knows ?y } UNION { ?x age ?y } }")));
}

TEST_F(SparqlTest, SafeAndSimpleFilters) {
  EXPECT_TRUE(HasOnlySafeFilters(Q(
      "SELECT ?x WHERE { ?x age ?a FILTER(bound(?a)) }")));
  EXPECT_TRUE(HasOnlySafeFilters(Q(
      "SELECT ?x WHERE { ?x knows ?y FILTER(?x = ?y) }")));
  EXPECT_FALSE(HasOnlySafeFilters(Q(
      "SELECT ?x WHERE { ?x knows ?y FILTER(?x != ?y) }")));
  EXPECT_TRUE(HasOnlySimpleFilters(Q(
      "SELECT ?x WHERE { ?x knows ?y FILTER(?x != ?y) }")));
}

TEST_F(SparqlTest, ConstructAndDescribeParse) {
  Query c = Q(
      "CONSTRUCT { ?x related ?z } WHERE { ?x knows ?y . ?y knows ?z }");
  EXPECT_EQ(c.form, QueryForm::kConstruct);
  EXPECT_EQ(c.construct_template.size(), 1u);
  Query d = Q("DESCRIBE alice");
  EXPECT_EQ(d.form, QueryForm::kDescribe);
  EXPECT_EQ(d.describe_terms.size(), 1u);
  EXPECT_EQ(d.pattern, nullptr);
}

TEST_F(SparqlTest, GraphPatternBindsDefault) {
  auto rows = Eval("SELECT ?g WHERE { GRAPH ?g { alice knows bob } }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(Value(rows[0], "g"), dict_.Intern("urn:rwdt:default"));
}

}  // namespace
}  // namespace rwdt::sparql
