#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/fragments.h"
#include "regex/parser.h"

namespace rwdt::regex {
namespace {

class FragmentsTest : public ::testing::Test {
 protected:
  RegexPtr Parse(const std::string& s) {
    auto r = ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }
  Interner dict_;
};

TEST_F(FragmentsTest, PaperExamplesAreSequential) {
  // Section 4.2.2: a*abb* and (a+b)*a(a+b)? are sequential;
  // (a*+b*) is not.
  EXPECT_TRUE(ToChainRegex(Parse("a*abb*")).has_value());
  EXPECT_TRUE(ToChainRegex(Parse("(a|b)*a(a|b)?")).has_value());
  EXPECT_FALSE(ToChainRegex(Parse("a*|b*")).has_value());
}

TEST_F(FragmentsTest, NonChainShapes) {
  EXPECT_FALSE(ToChainRegex(Parse("(ab)*")).has_value());
  EXPECT_FALSE(ToChainRegex(Parse("(a|bc)")).has_value());
  EXPECT_FALSE(ToChainRegex(Parse("(a?)?")).has_value());
  EXPECT_FALSE(ToChainRegex(Parse("((a|b)c)*")).has_value());
}

TEST_F(FragmentsTest, FactorDecomposition) {
  auto chain = ToChainRegex(Parse("(a|b)+c?d"));
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->factors.size(), 3u);
  EXPECT_EQ(chain->factors[0].symbols.size(), 2u);
  EXPECT_EQ(chain->factors[0].modifier, FactorModifier::kPlus);
  EXPECT_EQ(chain->factors[1].modifier, FactorModifier::kOptional);
  EXPECT_EQ(chain->factors[2].modifier, FactorModifier::kOnce);
}

TEST_F(FragmentsTest, EpsilonIsEmptyChain) {
  auto chain = ToChainRegex(Parse("<eps>"));
  ASSERT_TRUE(chain.has_value());
  EXPECT_TRUE(chain->factors.empty());
}

TEST_F(FragmentsTest, SignatureReflectsFactorTypes) {
  auto chain = ToChainRegex(Parse("ab*(c|d)+"));
  ASSERT_TRUE(chain.has_value());
  auto sig = chain->Signature();
  EXPECT_TRUE(sig.count(FactorType::kA));
  EXPECT_TRUE(sig.count(FactorType::kAStar));
  EXPECT_TRUE(sig.count(FactorType::kDisjPlus));
  EXPECT_EQ(sig.size(), 3u);
}

TEST_F(FragmentsTest, ChainRoundTripsToRegex) {
  auto chain = ToChainRegex(Parse("a(b|c)*d?"));
  ASSERT_TRUE(chain.has_value());
  auto again = ToChainRegex(chain->ToRegex());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->factors.size(), 3u);
}

TEST_F(FragmentsTest, KoreDetection) {
  // RE(a, a*) example from the paper: ab*a*ab is a chain expression where
  // 'a' occurs 3 times -> 3-ORE but not 2-ORE.
  RegexPtr e = Parse("ab*a*ab");
  EXPECT_TRUE(IsKore(e, 3));
  EXPECT_FALSE(IsKore(e, 2));
  EXPECT_FALSE(IsSore(e));
  EXPECT_TRUE(IsSore(Parse("a?b*(c|d)+")));
}

TEST_F(FragmentsTest, InFragmentDispatch) {
  const std::set<FactorType> re_a_astar = {FactorType::kA,
                                           FactorType::kAStar};
  EXPECT_TRUE(InFragment(Parse("ab*a*ab"), re_a_astar));
  EXPECT_FALSE(InFragment(Parse("ab?"), re_a_astar));
  EXPECT_FALSE(InFragment(Parse("(a|b)*a"), re_a_astar));

  const std::set<FactorType> re_a_aplus = {FactorType::kA,
                                           FactorType::kAPlus};
  EXPECT_TRUE(InFragment(Parse("ab+a+ab"), re_a_aplus));
  EXPECT_FALSE(InFragment(Parse("ab*"), re_a_aplus));
}

TEST_F(FragmentsTest, SingleSymbolWidensToDisjunction) {
  // "a" is a special case of "(+a)": RE(a,(+a)*) admits plain symbols
  // under the starred-disjunction type.
  const std::set<FactorType> frag = {FactorType::kDisj, FactorType::kDisjStar};
  EXPECT_TRUE(InFragment(Parse("a(b|c)*"), frag));
  EXPECT_TRUE(InFragment(Parse("ab*"), frag));
  EXPECT_FALSE(InFragment(Parse("ab?"), frag));
}

TEST_F(FragmentsTest, DuplicateSymbolsInDisjunctionCollapse) {
  auto chain = ToChainRegex(Parse("(a|a|b)"));
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->factors[0].symbols.size(), 2u);
}

}  // namespace
}  // namespace rwdt::regex
