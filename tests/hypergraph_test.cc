#include <gtest/gtest.h>

#include "common/interner.h"
#include "hypergraph/hypergraph.h"
#include "sparql/parser.h"

namespace rwdt::hypergraph {
namespace {

Hypergraph H(std::vector<std::vector<uint32_t>> edges) {
  Hypergraph h;
  for (auto& e : edges) h.AddEdge(std::move(e));
  return h;
}

TEST(GyoTest, AcyclicCases) {
  EXPECT_TRUE(IsAcyclic(H({})));
  EXPECT_TRUE(IsAcyclic(H({{0, 1}})));
  EXPECT_TRUE(IsAcyclic(H({{0, 1}, {1, 2}})));                // path
  EXPECT_TRUE(IsAcyclic(H({{0, 1}, {0, 2}, {0, 3}})));        // star
  EXPECT_TRUE(IsAcyclic(H({{0, 1, 2}, {2, 3}, {3, 4, 5}})));  // tree-like
  // The triangle covered by a big edge is acyclic (alpha-acyclicity).
  EXPECT_TRUE(IsAcyclic(H({{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}})));
}

TEST(GyoTest, CyclicCases) {
  EXPECT_FALSE(IsAcyclic(H({{0, 1}, {1, 2}, {0, 2}})));  // triangle
  EXPECT_FALSE(IsAcyclic(H({{0, 1}, {1, 2}, {2, 3}, {3, 0}})));  // square
}

TEST(FreeConnexTest, ProjectionMatters) {
  // Path x-y-z: acyclic. Free vars {x, z} (endpoints) break free-connex
  // acyclicity; free vars {x, y} keep it.
  Hypergraph path = H({{0, 1}, {1, 2}});
  EXPECT_TRUE(IsFreeConnexAcyclic(path, {0, 1}));
  EXPECT_TRUE(IsFreeConnexAcyclic(path, {0, 1, 2}));
  EXPECT_FALSE(IsFreeConnexAcyclic(path, {0, 2}));
  // Cyclic queries are never free-connex acyclic.
  EXPECT_FALSE(IsFreeConnexAcyclic(H({{0, 1}, {1, 2}, {0, 2}}), {0}));
}

TEST(HtwTest, MatchesAcyclicityAtOne) {
  const std::vector<Hypergraph> acyclic = {
      H({{0, 1}, {1, 2}}), H({{0, 1, 2}, {2, 3}}), H({{0, 1}})};
  for (const auto& h : acyclic) {
    EXPECT_TRUE(HypertreeWidthAtMost(h, 1).value());
  }
  const Hypergraph triangle = H({{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(HypertreeWidthAtMost(triangle, 1).value());
  EXPECT_TRUE(HypertreeWidthAtMost(triangle, 2).value());
}

TEST(HtwTest, GridNeedsWidthTwo) {
  // 2x3 grid of binary edges: treewidth 2, hypertree width 2.
  Hypergraph grid = H({{0, 1}, {1, 2}, {3, 4}, {4, 5},
                       {0, 3}, {1, 4}, {2, 5}});
  EXPECT_FALSE(HypertreeWidthAtMost(grid, 1).value());
  EXPECT_TRUE(HypertreeWidthAtMost(grid, 2).value());
}

TEST(HtwTest, CliqueOfBinaryEdges) {
  // K4 with binary edges: ghw = 2 (two edges cover each bag).
  Hypergraph k4 = H({{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_FALSE(HypertreeWidthAtMost(k4, 1).value());
  EXPECT_TRUE(HypertreeWidthAtMost(k4, 2).value());
}

class QueryShapeTest : public ::testing::Test {
 protected:
  sparql::Query Q(const std::string& text) {
    auto r = sparql::ParseSparql(text, &dict_);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    return r.ok() ? r.value() : sparql::Query{};
  }
  Interner dict_;
};

TEST_F(QueryShapeTest, CanonicalHypergraphFromQuery) {
  auto q = Q("SELECT ?x WHERE { ?x p ?y . ?y q ?z . "
             "FILTER(?x != ?z) }");
  Hypergraph h = BuildCanonicalHypergraph(q, /*include_filters=*/true);
  EXPECT_EQ(h.num_vertices, 3u);
  EXPECT_EQ(h.edges.size(), 3u);
  // The filter edge closes a cycle x-y-z-x.
  EXPECT_FALSE(IsAcyclic(h));
  Hypergraph no_filters =
      BuildCanonicalHypergraph(q, /*include_filters=*/false);
  EXPECT_TRUE(IsAcyclic(no_filters));
}

TEST_F(QueryShapeTest, ShapesFromQueries) {
  auto shape = [&](const std::string& text, bool with_constants) {
    return ClassifyShape(
        BuildCanonicalGraph(Q(text), with_constants));
  };
  EXPECT_EQ(shape("SELECT ?x WHERE { ?x p c1 }", true),
            GraphShape::kSingleEdge);
  // Without constants, the single triple's graph loses its only edge.
  EXPECT_EQ(shape("SELECT ?x WHERE { ?x p c1 }", false),
            GraphShape::kNoEdge);
  EXPECT_EQ(
      shape("SELECT ?x WHERE { ?x p ?y . ?y p ?z . ?z p ?w }", true),
      GraphShape::kChain);
  EXPECT_EQ(shape("SELECT ?x WHERE { ?x p ?a . ?x p ?b . ?x p ?c }",
                  true),
            GraphShape::kStar);
  EXPECT_EQ(shape("SELECT ?x WHERE { ?x p ?a . ?x p ?b . ?x p ?c . "
                  "?a q ?d . ?b q ?e }",
                  true),
            GraphShape::kStar);  // spider: one branching node
  EXPECT_EQ(shape("SELECT ?x WHERE { ?x p ?a . ?x p ?b . ?a q ?c . "
                  "?a q ?d . ?b q ?e . ?b q ?f }",
                  true),
            GraphShape::kTree);  // two branching nodes
  EXPECT_EQ(shape("SELECT ?x WHERE { ?x p ?y . ?z p ?w }", true),
            GraphShape::kForest);
  EXPECT_EQ(shape("SELECT ?x WHERE { ?x p ?y . ?y p ?z . ?z p ?x }",
                  true),
            GraphShape::kTreewidth2);
}

TEST_F(QueryShapeTest, ConstantsBecomeNodes) {
  // Triple graph includes constant endpoint nodes (paper: "nodes that
  // correspond to constant values").
  auto q = Q("SELECT ?x WHERE { ?x p c1 . ?x p c2 }");
  graph::SimpleGraph with = BuildCanonicalGraph(q, true);
  EXPECT_EQ(with.NumVertices(), 3u);
  EXPECT_EQ(with.NumEdges(), 2u);
  graph::SimpleGraph without = BuildCanonicalGraph(q, false);
  EXPECT_EQ(without.NumEdges(), 0u);
}

TEST_F(QueryShapeTest, BinaryFilterAddsEdge) {
  auto q = Q("SELECT ?x WHERE { ?x p ?y . FILTER(?x != ?y) }");
  graph::SimpleGraph g = BuildCanonicalGraph(q, true);
  // The filter edge {x,y} coincides with the triple edge.
  EXPECT_EQ(g.NumEdges(), 1u);
  auto q2 = Q("SELECT ?x WHERE { ?x p ?y . ?y p ?z . FILTER(?x != ?z) }");
  graph::SimpleGraph g2 = BuildCanonicalGraph(q2, true);
  EXPECT_EQ(g2.NumEdges(), 3u);  // triangle
  EXPECT_EQ(ClassifyShape(g2), GraphShape::kTreewidth2);
}

}  // namespace
}  // namespace rwdt::hypergraph
