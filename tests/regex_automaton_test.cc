#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/automaton.h"
#include "regex/glushkov.h"
#include "regex/parser.h"

namespace rwdt::regex {
namespace {

class AutomatonTest : public ::testing::Test {
 protected:
  RegexPtr Parse(const std::string& s) {
    auto r = ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }

  Word W(const std::string& s) {
    Word w;
    for (char c : s) w.push_back(dict_.Intern(std::string(1, c)));
    return w;
  }

  Interner dict_;
};

TEST_F(AutomatonTest, NfaMembership) {
  Nfa nfa = ToNfa(Parse("(a|b)*a"));
  EXPECT_TRUE(nfa.Accepts(W("a")));
  EXPECT_TRUE(nfa.Accepts(W("bba")));
  EXPECT_TRUE(nfa.Accepts(W("ababa")));
  EXPECT_FALSE(nfa.Accepts(W("")));
  EXPECT_FALSE(nfa.Accepts(W("ab")));
}

TEST_F(AutomatonTest, DfaMembershipMatchesNfa) {
  RegexPtr e = Parse("a?(b|c)+a");
  Nfa nfa = ToNfa(e);
  Dfa dfa = Determinize(nfa);
  for (const std::string s :
       {"", "a", "ba", "ca", "abca", "bbbca", "aa", "abc", "acba"}) {
    EXPECT_EQ(nfa.Accepts(W(s)), dfa.Accepts(W(s))) << s;
  }
}

TEST_F(AutomatonTest, EpsilonLanguage) {
  Dfa dfa = ToDfa(Parse("<eps>"));
  EXPECT_TRUE(dfa.Accepts(W("")));
  EXPECT_FALSE(dfa.Accepts(W("a")));
}

TEST_F(AutomatonTest, EmptyLanguage) {
  Dfa dfa = ToDfa(Parse("<empty>"));
  EXPECT_TRUE(IsEmptyLanguage(dfa));
  Dfa dfa2 = ToDfa(Parse("a<empty>b"));
  EXPECT_TRUE(IsEmptyLanguage(dfa2));
}

TEST_F(AutomatonTest, MinimizeCanonicalSize) {
  // (a|b)*a(a|b) has a well-known 4-state minimal complete DFA; the
  // partial minimal DFA (no dead state) also has 4 states since the
  // language is total-prefix... it never blocks.
  Dfa min = ToMinimalDfa(Parse("(a|b)*a(a|b)"));
  EXPECT_EQ(min.NumStates(), 4u);
  // Equivalent expressions minimize to identical sizes.
  Dfa min2 = ToMinimalDfa(Parse("(a|b)*a"));
  Dfa min3 = ToMinimalDfa(Parse("b*a(b*a)*"));
  EXPECT_EQ(min2.NumStates(), min3.NumStates());
  EXPECT_TRUE(AreEquivalent(min2, min3));
}

TEST_F(AutomatonTest, MinimizeRemovesDeadStates) {
  // ab<empty>|a: language {a}; naive determinization has dead branches.
  Dfa min = ToMinimalDfa(Parse("(ab<empty>)|a"));
  EXPECT_EQ(min.NumStates(), 2u);
  EXPECT_TRUE(min.Accepts(W("a")));
  EXPECT_FALSE(min.Accepts(W("ab")));
}

TEST_F(AutomatonTest, ContainmentBasics) {
  EXPECT_TRUE(IsContained(ToDfa(Parse("ab")), ToDfa(Parse("a(b|c)"))));
  EXPECT_FALSE(IsContained(ToDfa(Parse("a(b|c)")), ToDfa(Parse("ab"))));
  EXPECT_TRUE(IsContained(ToDfa(Parse("(ab)*")), ToDfa(Parse("(a|b)*"))));
  EXPECT_FALSE(IsContained(ToDfa(Parse("(a|b)*")), ToDfa(Parse("(ab)*"))));
}

TEST_F(AutomatonTest, ContainmentProducesWitness) {
  Word witness;
  EXPECT_FALSE(
      IsContained(ToDfa(Parse("a*")), ToDfa(Parse("a?")), &witness));
  EXPECT_EQ(witness.size(), 2u);  // "aa" is the shortest counterexample
}

TEST_F(AutomatonTest, EquivalenceOfClassicPair) {
  // From the paper: (a+b)*a is equivalent to the deterministic b*a(b*a)*.
  EXPECT_TRUE(
      AreEquivalent(ToDfa(Parse("(a|b)*a")), ToDfa(Parse("b*a(b*a)*"))));
  EXPECT_FALSE(
      AreEquivalent(ToDfa(Parse("(a|b)*a")), ToDfa(Parse("(a|b)*"))));
}

TEST_F(AutomatonTest, ShortestAcceptedWord) {
  auto w = ShortestAccepted(ToDfa(Parse("aa(b|c)a*")));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 3u);
  EXPECT_FALSE(ShortestAccepted(ToDfa(Parse("<empty>"))).has_value());
  auto eps = ShortestAccepted(ToDfa(Parse("a*")));
  ASSERT_TRUE(eps.has_value());
  EXPECT_TRUE(eps->empty());
}

TEST_F(AutomatonTest, ProductIntersection) {
  Dfa p = Product(ToDfa(Parse("a*b")), ToDfa(Parse("(ab)+")), true);
  EXPECT_TRUE(p.Accepts(W("ab")));
  EXPECT_FALSE(p.Accepts(W("b")));     // only in lhs
  EXPECT_FALSE(p.Accepts(W("abab")));  // only in rhs
}

TEST_F(AutomatonTest, ProductUnion) {
  Dfa p = Product(ToDfa(Parse("a")), ToDfa(Parse("b")), false);
  EXPECT_TRUE(p.Accepts(W("a")));
  EXPECT_TRUE(p.Accepts(W("b")));
  EXPECT_FALSE(p.Accepts(W("ab")));
}

TEST_F(AutomatonTest, IntersectionNonEmptyGeneric) {
  std::vector<Nfa> nfas = {ToNfa(Parse("(a|b)*a")), ToNfa(Parse("a*b*a"))};
  Word witness;
  auto r = IntersectionNonEmpty(nfas, &witness);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);
  for (const auto& nfa : nfas) EXPECT_TRUE(nfa.Accepts(witness));
}

TEST_F(AutomatonTest, IntersectionEmptyGeneric) {
  std::vector<Nfa> nfas = {ToNfa(Parse("aa")), ToNfa(Parse("aaa"))};
  auto r = IntersectionNonEmpty(nfas);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(*r);
}

TEST_F(AutomatonTest, EnumerateLanguageOrdered) {
  auto words = EnumerateLanguage(ToDfa(Parse("a*")), 4, 10);
  ASSERT_EQ(words.size(), 4u);
  for (size_t i = 0; i < words.size(); ++i) EXPECT_EQ(words[i].size(), i);
}

TEST_F(AutomatonTest, MinimalDfaSizeCountsDeadState) {
  // L(a) over {a}: partial minimal has 2 states; complete minimal has 3.
  EXPECT_EQ(MinimalDfaSize(ToDfa(Parse("a"))), 3u);
  // L(a*) over {a}: 1 state, complete.
  EXPECT_EQ(MinimalDfaSize(ToDfa(Parse("a*"))), 1u);
}

TEST_F(AutomatonTest, DeterminizationBlowupFamily) {
  // (a|b)* a (a|b)^{k}: minimal complete DFA has 2^{k+1} states.
  for (int k = 1; k <= 4; ++k) {
    std::string s = "(a|b)*a";
    for (int i = 0; i < k; ++i) s += "(a|b)";
    const size_t size = MinimalDfaSize(ToDfa(Parse(s)));
    EXPECT_EQ(size, 1u << (k + 1)) << s;
  }
}

}  // namespace
}  // namespace rwdt::regex
