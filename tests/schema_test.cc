#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/glushkov.h"
#include "regex/parser.h"
#include "schema/bonxai.h"
#include "schema/dtd.h"
#include "schema/edtd.h"
#include "tree/xml.h"

namespace rwdt::schema {
namespace {

/// The paper's Example 4.2 DTD.
const char kPersonsDtd[] = R"(
<!ELEMENT persons (person*)>
<!ELEMENT person (name, birthplace)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT birthplace (city, state, country?)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT country (#PCDATA)>
)";

class DtdTest : public ::testing::Test {
 protected:
  Dtd ParsePersons() {
    auto r = ParseDtd(kPersonsDtd, &dict_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  tree::Tree ParseTree(const std::string& xml) {
    auto r = tree::ParseXml(xml, &dict_);
    EXPECT_TRUE(r.ok()) << r.error_message();
    return r.value().tree;
  }

  Interner dict_;
};

TEST_F(DtdTest, ParsesElementDeclarations) {
  Dtd dtd = ParsePersons();
  EXPECT_EQ(dtd.rules.size(), 7u);
  ASSERT_EQ(dtd.start.size(), 1u);
  EXPECT_EQ(dict_.Name(*dtd.start.begin()), "persons");
}

TEST_F(DtdTest, ValidatesPaperExampleTree) {
  Dtd dtd = ParsePersons();
  DtdValidator validator(dtd);
  // Figure 1c tree: one person with full birthplace.
  auto t = ParseTree(
      "<persons><person><name/><birthplace><city/><state/><country/>"
      "</birthplace></person></persons>");
  EXPECT_TRUE(validator.Validate(t).valid);
  // country? is optional.
  auto t2 = ParseTree(
      "<persons><person><name/><birthplace><city/><state/>"
      "</birthplace></person></persons>");
  EXPECT_TRUE(validator.Validate(t2).valid);
  // Missing state: invalid.
  auto t3 = ParseTree(
      "<persons><person><name/><birthplace><city/></birthplace>"
      "</person></persons>");
  EXPECT_FALSE(validator.Validate(t3).valid);
  // Wrong root.
  auto t4 = ParseTree("<person><name/></person>");
  EXPECT_FALSE(validator.Validate(t4).valid);
}

TEST_F(DtdTest, AnyContentAcceptsEverything) {
  auto r = ParseDtd("<!ELEMENT a (b*)><!ELEMENT b ANY>", &dict_);
  ASSERT_TRUE(r.ok());
  DtdValidator validator(r.value());
  EXPECT_TRUE(validator.Validate(ParseTree("<a><b><a/><b/></b></a>")).valid);
}

TEST_F(DtdTest, RecursionDetection) {
  auto nonrec = ParseDtd(kPersonsDtd, &dict_);
  ASSERT_TRUE(nonrec.ok());
  EXPECT_FALSE(IsRecursive(nonrec.value()));
  auto depth = MaxDocumentDepth(nonrec.value());
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(*depth, 4u);  // persons > person > birthplace > city

  auto rec = ParseDtd("<!ELEMENT part (part*, leaf?)><!ELEMENT leaf EMPTY>",
                      &dict_);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(IsRecursive(rec.value()));
  EXPECT_FALSE(MaxDocumentDepth(rec.value()).has_value());
}

TEST_F(DtdTest, StreamingValidationMatchesBatch) {
  Dtd dtd = ParsePersons();
  DtdValidator batch(dtd);
  const std::vector<std::string> docs = {
      "<persons/>",
      "<persons><person><name/><birthplace><city/><state/></birthplace>"
      "</person></persons>",
      "<persons><person><name/></person></persons>",  // invalid
      "<persons><city/></persons>",                   // invalid
  };
  for (const auto& xml : docs) {
    auto t = ParseTree(xml);
    StreamingDtdValidator streaming(dtd);
    // Drive SAX events by DFS.
    std::function<void(tree::NodeId)> drive = [&](tree::NodeId id) {
      streaming.StartElement(t.node(id).label);
      for (tree::NodeId c : t.node(id).children) drive(c);
      streaming.EndElement();
    };
    drive(t.root());
    EXPECT_EQ(streaming.Finish(), batch.Validate(t).valid) << xml;
  }
}

TEST_F(DtdTest, StreamingMemoryBoundedByDepth) {
  Dtd dtd = ParsePersons();
  StreamingDtdValidator streaming(dtd);
  auto t = ParseTree(
      "<persons><person><name/><birthplace><city/><state/></birthplace>"
      "</person></persons>");
  std::function<void(tree::NodeId)> drive = [&](tree::NodeId id) {
    streaming.StartElement(t.node(id).label);
    for (tree::NodeId c : t.node(id).children) drive(c);
    streaming.EndElement();
  };
  drive(t.root());
  EXPECT_TRUE(streaming.Finish());
  // Segoufin-Vianu: memory bounded by MaxDocumentDepth for non-recursive
  // DTDs, independent of document width.
  EXPECT_LE(streaming.max_stack_depth(), *MaxDocumentDepth(dtd));
}

TEST_F(DtdTest, DtdToStringRoundTrips) {
  Dtd dtd = ParsePersons();
  auto again = ParseDtd(DtdToString(dtd, dict_), &dict_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().rules.size(), dtd.rules.size());
}

class EdtdTest : public ::testing::Test {
 protected:
  regex::RegexPtr Re(const std::string& s) {
    auto r = regex::ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }
  SymbolId S(const std::string& s) { return dict_.Intern(s); }

  /// Example 4.11: birthplace-US vs birthplace-Intl.
  Edtd PaperExample() {
    Edtd e;
    e.rules[S("persons")] = Re("'person'*");
    e.rules[S("person")] = Re("'name'('bp-US'|'bp-Intl')");
    e.rules[S("bp-US")] = Re("'city' 'state' 'country'?");
    e.rules[S("bp-Intl")] = Re("'city' 'state' 'country'");
    e.start_types = {S("persons")};
    for (const auto& name :
         {"persons", "person", "name", "city", "state", "country"}) {
      e.mu[S(name)] = S(name);
    }
    e.mu[S("bp-US")] = S("birthplace");
    e.mu[S("bp-Intl")] = S("birthplace");
    return e;
  }

  tree::Tree ParseTree(const std::string& xml) {
    auto r = tree::ParseXml(xml, &dict_);
    EXPECT_TRUE(r.ok()) << r.error_message();
    return r.value().tree;
  }

  Interner dict_;
};

TEST_F(EdtdTest, PaperExampleValidation) {
  Edtd e = PaperExample();
  // Figure 1c tree is in the language (as bp-US or bp-Intl).
  EXPECT_TRUE(ValidateEdtd(
      e, ParseTree("<persons><person><name/><birthplace><city/><state/>"
                   "<country/></birthplace></person></persons>")));
  // Without country: only bp-US fits.
  EXPECT_TRUE(ValidateEdtd(
      e, ParseTree("<persons><person><name/><birthplace><city/><state/>"
                   "</birthplace></person></persons>")));
  // Missing state: neither type fits.
  EXPECT_FALSE(ValidateEdtd(
      e, ParseTree("<persons><person><name/><birthplace><city/>"
                   "</birthplace></person></persons>")));
}

TEST_F(EdtdTest, PaperExampleViolatesSingleType) {
  // bp-US and bp-Intl share the label birthplace inside one rule: the
  // EDC constraint fails (the paper notes exactly this).
  EXPECT_FALSE(IsSingleType(PaperExample()));
  EXPECT_FALSE(IsStructurallyDtd(PaperExample()));
}

TEST_F(EdtdTest, SingleTypeValidationAgreesWithGeneral) {
  // Figure 2a schema: the type of d (and h) depends on an ancestor.
  Edtd e;
  e.rules[S("a")] = Re("'b'|'c'");
  e.rules[S("b")] = Re("'e''d1''f'");
  e.rules[S("c")] = Re("'e''d2''f'");
  e.rules[S("d1")] = Re("'g''h1''i'");
  e.rules[S("d2")] = Re("'g''h2''i'");
  e.rules[S("h1")] = Re("'j'");
  e.rules[S("h2")] = Re("'k'");
  e.start_types = {S("a")};
  for (const auto& name : {"a", "b", "c", "e", "f", "g", "i", "j", "k"}) {
    e.mu[S(name)] = S(name);
  }
  e.mu[S("d1")] = S("d");
  e.mu[S("d2")] = S("d");
  e.mu[S("h1")] = S("h");
  e.mu[S("h2")] = S("h");
  EXPECT_TRUE(IsSingleType(e));
  EXPECT_FALSE(IsStructurallyDtd(e));

  const std::vector<std::pair<std::string, bool>> cases = {
      {"<a><b><e/><d><g/><h><j/></h><i/></d><f/></b></a>", true},
      {"<a><c><e/><d><g/><h><k/></h><i/></d><f/></c></a>", true},
      // j under c-branch: wrong grandparent context.
      {"<a><c><e/><d><g/><h><j/></h><i/></d><f/></c></a>", false},
      {"<a><b><e/><d><g/><h><k/></h><i/></d><f/></b></a>", false},
  };
  for (const auto& [xml, expected] : cases) {
    auto t = ParseTree(xml);
    EXPECT_EQ(ValidateEdtd(e, t), expected) << xml;
    EXPECT_EQ(ValidateSingleType(e, t), expected) << xml;
  }
}

TEST_F(EdtdTest, DtdAsEdtdPreservesLanguage) {
  auto dtd = ParseDtd(kPersonsDtd, &dict_);
  ASSERT_TRUE(dtd.ok());
  Edtd e = DtdAsEdtd(dtd.value());
  EXPECT_TRUE(IsSingleType(e));
  EXPECT_TRUE(IsStructurallyDtd(e));
  DtdValidator validator(dtd.value());
  for (const std::string xml :
       {"<persons/>",
        "<persons><person><name/><birthplace><city/><state/></birthplace>"
        "</person></persons>",
        "<persons><person><name/></person></persons>"}) {
    auto t = ParseTree(xml);
    EXPECT_EQ(ValidateEdtd(e, t), validator.Validate(t).valid) << xml;
  }
}

class BonxaiTest : public ::testing::Test {
 protected:
  regex::RegexPtr Re(const std::string& s) {
    auto r = regex::ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }
  PathPattern Pat(const std::string& s) {
    auto r = ParsePathPattern(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }
  tree::Tree ParseTree(const std::string& xml) {
    auto r = tree::ParseXml(xml, &dict_);
    EXPECT_TRUE(r.ok()) << r.error_message();
    return r.value().tree;
  }
  std::vector<SymbolId> Path(const std::vector<std::string>& labels) {
    std::vector<SymbolId> out;
    for (const auto& l : labels) out.push_back(dict_.Intern(l));
    return out;
  }

  /// The paper's Figure 2b pattern-based schema.
  BonxaiSchema Figure2b() {
    BonxaiSchema s;
    s.rules.push_back({Pat("a"), Re("'b'|'c'")});
    s.rules.push_back({Pat("b"), Re("'e''d''f'")});
    s.rules.push_back({Pat("c"), Re("'e''d''f'")});
    s.rules.push_back({Pat("d"), Re("'g''h''i'")});
    s.rules.push_back({Pat("//b//h"), Re("'j'")});
    s.rules.push_back({Pat("//c//h"), Re("'k'")});
    // Leaves select with empty content models.
    for (const auto& leaf : {"e", "f", "g", "i", "j", "k"}) {
      s.rules.push_back({Pat(leaf), Re("<eps>")});
    }
    return s;
  }

  Interner dict_;
};

TEST_F(BonxaiTest, PatternMatching) {
  EXPECT_TRUE(Pat("//b//h").Matches(Path({"a", "b", "d", "h"})));
  EXPECT_FALSE(Pat("//b//h").Matches(Path({"a", "c", "d", "h"})));
  EXPECT_TRUE(Pat("/a/b").Matches(Path({"a", "b"})));
  EXPECT_FALSE(Pat("/a/b").Matches(Path({"x", "a", "b"})));
  EXPECT_TRUE(Pat("a").Matches(Path({"x", "a"})));
  EXPECT_FALSE(Pat("//b//h").Matches(Path({"b"})));
  // The pattern selects the node itself, not descendants of a match.
  EXPECT_FALSE(Pat("//b//h").Matches(Path({"a", "b", "h", "x"})));
}

TEST_F(BonxaiTest, Figure2bValidation) {
  BonxaiSchema schema = Figure2b();
  EXPECT_TRUE(ValidateBonxai(
      schema,
      ParseTree("<a><b><e/><d><g/><h><j/></h><i/></d><f/></b></a>")));
  EXPECT_TRUE(ValidateBonxai(
      schema,
      ParseTree("<a><c><e/><d><g/><h><k/></h><i/></d><f/></c></a>")));
  // j in the c-branch violates //c//h -> k.
  EXPECT_FALSE(ValidateBonxai(
      schema,
      ParseTree("<a><c><e/><d><g/><h><j/></h><i/></d><f/></c></a>")));
  // Unselected node (label outside the schema).
  EXPECT_FALSE(ValidateBonxai(schema, ParseTree("<zzz/>")));
}

TEST_F(BonxaiTest, DtdToBonxaiPreservesValidation) {
  auto dtd = ParseDtd(kPersonsDtd, &dict_);
  ASSERT_TRUE(dtd.ok());
  BonxaiSchema schema = DtdToBonxai(dtd.value());
  DtdValidator validator(dtd.value());
  for (const std::string xml :
       {"<persons/>",
        "<persons><person><name/><birthplace><city/><state/></birthplace>"
        "</person></persons>",
        "<persons><person><name/></person></persons>"}) {
    auto t = ParseTree(xml);
    EXPECT_EQ(ValidateBonxai(schema, t), validator.Validate(t).valid)
        << xml;
  }
}

TEST_F(BonxaiTest, TranslationToSingleTypeEdtdAgrees) {
  BonxaiSchema schema = Figure2b();
  std::vector<SymbolId> alphabet;
  for (const auto& l :
       {"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"}) {
    alphabet.push_back(dict_.Intern(l));
  }
  Edtd edtd = BonxaiToSingleTypeEdtd(schema, alphabet, &dict_);
  EXPECT_TRUE(IsSingleType(edtd));
  const std::vector<std::pair<std::string, bool>> cases = {
      {"<a><b><e/><d><g/><h><j/></h><i/></d><f/></b></a>", true},
      {"<a><c><e/><d><g/><h><k/></h><i/></d><f/></c></a>", true},
      {"<a><c><e/><d><g/><h><j/></h><i/></d><f/></c></a>", false},
      {"<a><b><e/><d><g/><h><k/></h><i/></d><f/></b></a>", false},
      {"<a/>", false},
  };
  for (const auto& [xml, expected] : cases) {
    auto t = ParseTree(xml);
    EXPECT_EQ(ValidateBonxai(schema, t), expected) << xml;
    EXPECT_EQ(ValidateEdtd(edtd, t), expected) << "EDTD: " << xml;
    EXPECT_EQ(ValidateSingleType(edtd, t), expected) << "stEDTD: " << xml;
  }
}

}  // namespace
}  // namespace rwdt::schema
