#include <gtest/gtest.h>

#include "common/interner.h"
#include "regex/bkw.h"
#include "regex/glushkov.h"
#include "regex/parser.h"

namespace rwdt::regex {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  RegexPtr Parse(const std::string& s) {
    auto r = ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }
  Interner dict_;
};

// Section 4.2.1: (a+b)*a is not deterministic; b*a(b*a)* is deterministic
// and equivalent.
TEST_F(DeterminismTest, PaperExamples) {
  EXPECT_FALSE(IsDeterministic(Parse("(a|b)*a")));
  EXPECT_TRUE(IsDeterministic(Parse("b*a(b*a)*")));
}

TEST_F(DeterminismTest, SimpleDeterministicExpressions) {
  EXPECT_TRUE(IsDeterministic(Parse("a")));
  EXPECT_TRUE(IsDeterministic(Parse("a*")));
  EXPECT_TRUE(IsDeterministic(Parse("(a|b)*")));
  EXPECT_TRUE(IsDeterministic(Parse("ab?c*")));
  EXPECT_TRUE(IsDeterministic(Parse("a(b|c)d")));
  EXPECT_TRUE(IsDeterministic(Parse("(ab)*")));
}

TEST_F(DeterminismTest, NondeterministicExpressions) {
  EXPECT_FALSE(IsDeterministic(Parse("a?a")));
  EXPECT_FALSE(IsDeterministic(Parse("a*a")));
  EXPECT_FALSE(IsDeterministic(Parse("(a|ab)")));
  EXPECT_FALSE(IsDeterministic(Parse("(a|b)*a(a|b)")));
  EXPECT_FALSE(IsDeterministic(Parse("(ab|ac)")));
}

TEST_F(DeterminismTest, SoresAreDeterministic) {
  // A single-occurrence RE is always deterministic (each symbol occurs
  // once, so no matching ambiguity is possible).
  for (const std::string s :
       {"abc", "a?b*c+", "(a|b)c*", "(a(b|c))?d", "a(b(c|d)*e)?f"}) {
    EXPECT_TRUE(IsDeterministic(Parse(s))) << s;
  }
}

// Brüggemann-Klein & Wood: (a+b)*a(a+b) has no equivalent deterministic
// expression, while L((a+b)*a) is definable (b*a(b*a)*).
TEST_F(DeterminismTest, BkwPaperExamples) {
  EXPECT_FALSE(IsDreDefinable(Parse("(a|b)*a(a|b)")));
  EXPECT_TRUE(IsDreDefinable(Parse("(a|b)*a")));
}

TEST_F(DeterminismTest, BkwSimpleLanguages) {
  EXPECT_TRUE(IsDreDefinable(Parse("a")));
  EXPECT_TRUE(IsDreDefinable(Parse("a*")));
  EXPECT_TRUE(IsDreDefinable(Parse("(a|b)*")));
  EXPECT_TRUE(IsDreDefinable(Parse("(ab)*")));
  EXPECT_TRUE(IsDreDefinable(Parse("a?b?c?")));
  EXPECT_TRUE(IsDreDefinable(Parse("<empty>")));
  EXPECT_TRUE(IsDreDefinable(Parse("<eps>")));
}

TEST_F(DeterminismTest, BkwBlowupFamilyNotDefinable) {
  // (a|b)*a(a|b)^k is not DRE-definable for k >= 1.
  for (int k = 1; k <= 3; ++k) {
    std::string s = "(a|b)*a";
    for (int i = 0; i < k; ++i) s += "(a|b)";
    EXPECT_FALSE(IsDreDefinable(Parse(s))) << s;
  }
}

TEST_F(DeterminismTest, DeterministicExpressionImpliesDefinable) {
  // Any deterministic expression's language is trivially DRE-definable.
  for (const std::string s :
       {"b*a(b*a)*", "a(b|c)d", "(ab)*", "a?b*c+", "(a(b|c))?d"}) {
    RegexPtr e = Parse(s);
    ASSERT_TRUE(IsDeterministic(e)) << s;
    EXPECT_TRUE(IsDreDefinable(e)) << s;
  }
}

TEST_F(DeterminismTest, NondeterministicSyntaxCanStillBeDefinable) {
  // a*a is not a deterministic expression but L(a*a)=a+ = aa* is.
  RegexPtr e = Parse("a*a");
  EXPECT_FALSE(IsDeterministic(e));
  EXPECT_TRUE(IsDreDefinable(e));
}

}  // namespace
}  // namespace rwdt::regex
