// Loopback integration tests for serve::ClassifyServer: golden verdicts
// for all three query languages, batch/direct bit-identical aggregates,
// overload shedding with 429 + Retry-After, per-tenant quotas, and
// graceful drain. All traffic goes over real sockets.

#include "serve/serve.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest.h"
#include "loggen/sparql_gen.h"
#include "serve/verdict.h"

namespace rwdt::serve {
namespace {

struct HttpResult {
  int status = 0;
  std::string head;
  std::string body;
};

/// One-shot request (Connection: close), response read to EOF. Keeps
/// the client trivially correct; keep-alive is covered by
/// serve_http_test.
HttpResult Fetch(uint16_t port, const std::string& method,
                 const std::string& target, const std::string& body = "",
                 const std::string& extra_headers = "") {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: t\r\n" +
                        extra_headers + "Connection: close\r\n" +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return result;
  result.head = raw.substr(0, split);
  result.body = raw.substr(split + 4);
  if (result.head.compare(0, 9, "HTTP/1.1 ") == 0) {
    result.status = std::atoi(result.head.c_str() + 9);
  }
  return result;
}

ServeOptions BaseOptions() {
  ServeOptions opts;
  opts.http.port = 0;
  opts.http.handler_threads = 4;
  opts.workers = 2;
  return opts;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(ClassifyServerTest, SparqlGoldenVerdict) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  const HttpResult r =
      Fetch(server.port(), "POST", "/v1/classify",
            "SELECT ?s WHERE { ?s <p> <o> . FILTER(?s > 3) }");
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"lang\":\"sparql\"")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"valid\":true")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"form\":\"select\"")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"fragment\":\"cq_f\"")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"well_designed\":true")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"free_connex_acyclic\":true")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"htw_le\":1")) << r.body;
}

TEST(ClassifyServerTest, PathAndXPathVerdicts) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());

  const HttpResult path =
      Fetch(server.port(), "POST", "/v1/classify?lang=path", "a/(b|c)*");
  ASSERT_EQ(path.status, 200) << path.body;
  EXPECT_TRUE(Contains(path.body, "\"lang\":\"path\"")) << path.body;
  EXPECT_TRUE(Contains(path.body, "\"canonical_type\"")) << path.body;
  EXPECT_TRUE(Contains(path.body, "\"ctract\":true")) << path.body;

  const HttpResult xp = Fetch(server.port(), "POST",
                              "/v1/classify?lang=xpath", "/a/b[c]//d");
  ASSERT_EQ(xp.status, 200) << xp.body;
  EXPECT_TRUE(Contains(xp.body, "\"lang\":\"xpath\"")) << xp.body;
  EXPECT_TRUE(Contains(xp.body, "\"positive\":true")) << xp.body;
  EXPECT_TRUE(Contains(xp.body, "\"downward\":true")) << xp.body;
}

TEST(ClassifyServerTest, UnparseableQueryIs422WithTaxonomyClass) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  const HttpResult r =
      Fetch(server.port(), "POST", "/v1/classify", "SELECT bogus (((");
  EXPECT_EQ(r.status, 422);
  EXPECT_TRUE(Contains(r.body, "\"valid\":false")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"error_class\"")) << r.body;
}

TEST(ClassifyServerTest, BadLangAndEmptyBodyAre400) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Fetch(server.port(), "POST", "/v1/classify?lang=sql", "x").status,
            400);
  EXPECT_EQ(Fetch(server.port(), "POST", "/v1/classify", "").status, 400);
  EXPECT_EQ(
      Fetch(server.port(), "POST", "/v1/classify_batch?format=csv", "x")
          .status,
      400);
}

TEST(ClassifyServerTest, OversizedBodyIs413) {
  ServeOptions opts = BaseOptions();
  opts.http.max_body_bytes = 128;
  ClassifyServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  const HttpResult r = Fetch(server.port(), "POST", "/v1/classify",
                             std::string(4096, 'q'));
  EXPECT_EQ(r.status, 413);
}

// The acceptance criterion of this subsystem: aggregates computed
// through the HTTP batch route are byte-identical to a direct
// EngineStream run over the same log. String equality on the rendered
// SourceStudy JSON implies bit-identical aggregates underneath.
TEST(ClassifyServerTest, BatchAggregatesMatchDirectEngineRunExactly) {
  std::string log_text;
  for (const auto& entry :
       loggen::GenerateLog(loggen::ExampleProfile(300), /*seed=*/7)) {
    log_text += entry.text;
    log_text += '\n';
  }
  // Guarantee the error-taxonomy path is exercised regardless of the
  // generator's invalid ratio.
  log_text += "SELECT bogus (((\n";
  log_text += "}} not sparql at all\n";

  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  const HttpResult via_http =
      Fetch(server.port(), "POST", "/v1/classify_batch?format=plain",
            log_text);
  ASSERT_EQ(via_http.status, 200) << via_http.body;

  // Direct run, mirroring the serve worker's engine configuration.
  engine::EngineOptions eopts;
  eopts.threads = 1;
  eopts.num_shards = 1;
  engine::Engine engine(eopts);
  ingest::IngestOptions iopts;
  iopts.format = ingest::LogFormat::kPlain;
  iopts.source_name = "http";
  std::istringstream in(log_text);
  const Result<ingest::IngestReport> direct =
      ingest::IngestStream(in, &engine, iopts);
  ASSERT_TRUE(direct.ok()) << direct.status().message();

  EXPECT_EQ(via_http.body, StudyToJson(direct.value().study));
  // And the batch actually exercised the error taxonomy + dedup paths.
  EXPECT_GT(direct.value().study.valid, 0u);
  EXPECT_LT(direct.value().study.valid, direct.value().study.total);
}

TEST(ClassifyServerTest, LogRouteReportsPerSourceForTsv) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  const std::string tsv =
      "alpha\tSELECT ?s WHERE { ?s <p> <o> }\n"
      "alpha\tASK { ?a <b> ?c }\n"
      "beta\tSELECT ?x WHERE { ?x <y> <z> }\n";
  const HttpResult r =
      Fetch(server.port(), "POST", "/v1/log?format=tsv&source=mixed", tsv);
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"per_source\"")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"alpha\":2")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"beta\":1")) << r.body;
  EXPECT_TRUE(Contains(r.body, "\"name\":\"mixed\"")) << r.body;
}

// Induced overload: one slow worker, a queue of 1, and a burst of
// concurrent requests. Some must be shed with 429 + Retry-After; every
// request gets an HTTP response; the process stays healthy throughout.
TEST(ClassifyServerTest, OverloadSheds429AndStaysHealthy) {
  ServeOptions opts = BaseOptions();
  opts.workers = 1;
  opts.max_batch = 1;
  opts.queue_capacity = 1;
  opts.debug_worker_delay_ms = 150;
  opts.http.handler_threads = 8;
  ClassifyServer server(opts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kBurst = 6;
  std::vector<HttpResult> results(kBurst);
  std::vector<std::thread> clients;
  for (int i = 0; i < kBurst; ++i) {
    clients.emplace_back([&, i] {
      results[i] = Fetch(server.port(), "POST", "/v1/classify",
                         "SELECT ?s WHERE { ?s <p> <o> }");
    });
  }
  // The data plane may be saturated; the control plane must not be.
  const HttpResult health = Fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  for (auto& t : clients) t.join();

  int ok = 0, shed = 0;
  for (const HttpResult& r : results) {
    ASSERT_TRUE(r.status == 200 || r.status == 429)
        << "unexpected status " << r.status << ": " << r.body;
    if (r.status == 200) ok++;
    if (r.status == 429) {
      shed++;
      EXPECT_TRUE(Contains(r.head, "Retry-After:")) << r.head;
      EXPECT_TRUE(Contains(r.body, "queue_full")) << r.body;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(ok + shed, kBurst);  // nothing dropped silently
}

TEST(ClassifyServerTest, PerTenantQuotaExhaustsIndependently) {
  ServeOptions opts = BaseOptions();
  opts.quota_qps = 0.001;  // effectively no refill within the test
  opts.quota_burst = 2;
  ClassifyServer server(opts);
  ASSERT_TRUE(server.Start().ok());

  const std::string query = "SELECT ?s WHERE { ?s <p> <o> }";
  // Tenant A: burst of 2 admitted, third shed.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(Fetch(server.port(), "POST", "/v1/classify", query,
                    "X-Tenant: alice\r\n")
                  .status,
              200);
  }
  const HttpResult shed = Fetch(server.port(), "POST", "/v1/classify", query,
                                "X-Tenant: alice\r\n");
  EXPECT_EQ(shed.status, 429);
  EXPECT_TRUE(Contains(shed.body, "quota_exhausted")) << shed.body;
  EXPECT_TRUE(Contains(shed.head, "Retry-After:")) << shed.head;

  // Tenant B is unaffected by A's exhaustion.
  EXPECT_EQ(Fetch(server.port(), "POST", "/v1/classify", query,
                  "X-Tenant: bob\r\n")
                .status,
            200);
}

// Drain protocol: accepted work finishes, new work is refused with 503,
// /readyz flips so load balancers eject the task before the listener
// goes away.
TEST(ClassifyServerTest, GracefulDrainFinishesAcceptedWork) {
  ServeOptions opts = BaseOptions();
  opts.workers = 1;
  opts.max_batch = 1;
  opts.debug_worker_delay_ms = 100;
  ClassifyServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Fetch(server.port(), "GET", "/readyz").status, 200);

  constexpr int kInFlight = 3;
  std::vector<HttpResult> results(kInFlight);
  std::vector<std::thread> clients;
  for (int i = 0; i < kInFlight; ++i) {
    clients.emplace_back([&, i] {
      results[i] = Fetch(server.port(), "POST", "/v1/classify",
                         "SELECT ?s WHERE { ?s <p> <o> }");
    });
  }
  // Let the burst get accepted into the queue, then start draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.BeginDrain();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(Fetch(server.port(), "GET", "/readyz").status, 503);

  const HttpResult refused = Fetch(server.port(), "POST", "/v1/classify",
                                   "SELECT ?s WHERE { ?s <p> <o> }");
  EXPECT_EQ(refused.status, 503);
  EXPECT_TRUE(Contains(refused.body, "draining")) << refused.body;

  server.Stop();  // waits for the queue to empty and workers to finish
  for (auto& t : clients) t.join();
  for (const HttpResult& r : results) {
    EXPECT_EQ(r.status, 200) << r.body;  // accepted work was completed
  }
}

TEST(ClassifyServerTest, MetricsAndStatuszExposeServingState) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(Fetch(server.port(), "POST", "/v1/classify",
                  "SELECT ?s WHERE { ?s <p> <o> }")
                .status,
            200);

  const HttpResult metrics = Fetch(server.port(), "GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(Contains(metrics.head, "application/openmetrics-text"))
      << metrics.head;
  EXPECT_TRUE(Contains(metrics.body, "rwdt_serve_requests_total"))
      << "missing request counters";
  EXPECT_TRUE(Contains(metrics.body, "rwdt_serve_queue_depth"));
  EXPECT_TRUE(Contains(metrics.body, "rwdt_serve_queue_wait_seconds_bucket"));
  EXPECT_TRUE(Contains(metrics.body, "rwdt_serve_batch_size_count"));
  EXPECT_TRUE(Contains(metrics.body, "rwdt_serve_connections_total"));

  const HttpResult statusz = Fetch(server.port(), "GET", "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_TRUE(Contains(statusz.body, "\"queue_capacity\":256"))
      << statusz.body;
  EXPECT_TRUE(Contains(statusz.body, "\"draining\":false")) << statusz.body;
}

TEST(ClassifyServerTest, ValidateRejectsNonsense) {
  ServeOptions opts = BaseOptions();
  opts.queue_capacity = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = BaseOptions();
  opts.workers = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = BaseOptions();
  opts.quota_qps = 5;
  opts.quota_burst = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = BaseOptions();
  opts.trace_sample_rate = 1.5;
  EXPECT_FALSE(opts.Validate().ok());
  opts = BaseOptions();
  opts.enable_slow_log = true;
  opts.slow_log.capacity = 0;
  EXPECT_FALSE(opts.Validate().ok());
}

// ---------------------------------------------------------------------
// SlowQueryLog (tail sampler) unit behavior

SlowQueryEntry TimedEntry(double total_s) {
  SlowQueryEntry e;
  e.route = "/v1/classify";
  e.total_s = total_s;
  return e;
}

TEST(SlowQueryLogTest, EvictsFastestAndSnapshotsSlowestFirst) {
  SlowLogOptions opts;
  opts.capacity = 3;
  opts.window_s = 0;  // no expiry: eviction order only
  SlowQueryLog log(opts);

  EXPECT_TRUE(log.WouldAdmit(0.001));  // not yet full: everything admits
  EXPECT_TRUE(log.Add(TimedEntry(1.0)));
  EXPECT_TRUE(log.Add(TimedEntry(5.0)));
  EXPECT_TRUE(log.Add(TimedEntry(3.0)));

  // Full. A slower entry evicts the fastest retained one (1.0)...
  EXPECT_TRUE(log.WouldAdmit(2.0));
  EXPECT_TRUE(log.Add(TimedEntry(2.0)));
  // ...but anything not beating the current fastest (now 2.0) bounces.
  EXPECT_FALSE(log.WouldAdmit(2.0));  // ties lose: must beat, not match
  EXPECT_FALSE(log.Add(TimedEntry(0.5)));

  const std::vector<SlowQueryEntry> got = log.Snapshot();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[0].total_s, 5.0);  // slowest first
  EXPECT_DOUBLE_EQ(got[1].total_s, 3.0);
  EXPECT_DOUBLE_EQ(got[2].total_s, 2.0);
  EXPECT_EQ(log.admitted(), 4u);
  EXPECT_EQ(log.evicted(), 1u);
}

TEST(SlowQueryLogTest, TruncatesStoredQueryText) {
  SlowLogOptions opts;
  opts.capacity = 2;
  opts.max_query_bytes = 8;
  SlowQueryLog log(opts);
  SlowQueryEntry e = TimedEntry(1.0);
  e.query = "SELECT * WHERE { ?s ?p ?o }";
  ASSERT_TRUE(log.Add(std::move(e)));
  const auto got = log.Snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].query, "SELECT *");
  EXPECT_TRUE(got[0].query_truncated);
  EXPECT_TRUE(Contains(log.ToJson(), "\"query_truncated\":true"));
}

// ---------------------------------------------------------------------
// Request tracing end to end

TEST(ClassifyServerTest, TraceparentRoundTripsAndMalformedGetsFreshTrace) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  const std::string query = "SELECT ?s WHERE { ?s <p> <o> }";

  // A valid inbound traceparent: the response echoes the same trace id.
  const HttpResult r = Fetch(
      server.port(), "POST", "/v1/classify", query,
      "traceparent: 00-0000000000000000deadbeefcafef00d-0123456789abcdef-01"
      "\r\n");
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_TRUE(Contains(r.head, "traceparent: 00-0000000000000000deadbeefcafe"
                               "f00d-"))
      << r.head;
  // The responded span id is the server's root span, not the caller's.
  EXPECT_FALSE(Contains(r.head, "-0123456789abcdef-")) << r.head;

  // Malformed traceparent: the request is still served, under a fresh
  // (nonzero, different) trace id.
  const HttpResult bad = Fetch(server.port(), "POST", "/v1/classify", query,
                               "traceparent: hello-world\r\n");
  ASSERT_EQ(bad.status, 200) << bad.body;
  const size_t at = bad.head.find("traceparent: 00-");
  ASSERT_NE(at, std::string::npos) << bad.head;
  const std::string trace_hex = bad.head.substr(at + 16, 32);
  EXPECT_EQ(trace_hex.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_NE(trace_hex, "0000000000000000deadbeefcafef00d");
  EXPECT_NE(trace_hex, "00000000000000000000000000000000");
}

TEST(ClassifyServerTest, ShedResponsesCarryTheTraceId) {
  ServeOptions opts = BaseOptions();
  opts.quota_qps = 0.001;
  opts.quota_burst = 1;
  ClassifyServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  const std::string query = "SELECT ?s WHERE { ?s <p> <o> }";
  const std::string tp =
      "traceparent: 00-0000000000000000deadbeefcafef00d-0123456789abcdef-01"
      "\r\n";
  ASSERT_EQ(Fetch(server.port(), "POST", "/v1/classify", query, tp).status,
            200);
  const HttpResult shed =
      Fetch(server.port(), "POST", "/v1/classify", query, tp);
  ASSERT_EQ(shed.status, 429);
  // The rejected request is still reportable: its trace id is in the
  // JSON body and on the response's traceparent header.
  EXPECT_TRUE(Contains(shed.body, "\"error\":\"quota_exhausted\""))
      << shed.body;
  EXPECT_TRUE(Contains(shed.body, "\"trace_id\":\"deadbeefcafef00d\""))
      << shed.body;
  EXPECT_TRUE(Contains(shed.head, "traceparent: 00-0000000000000000deadbeef"))
      << shed.head;

  // Drain sheds are tagged the same way (fresh tenant: the quota check
  // runs before the drain check, and this tenant still has budget).
  server.BeginDrain();
  const HttpResult drained = Fetch(server.port(), "POST", "/v1/classify",
                                   query, "X-Tenant: other\r\n" + tp);
  ASSERT_EQ(drained.status, 503);
  EXPECT_TRUE(Contains(drained.body, "\"trace_id\":\"deadbeefcafef00d\""))
      << drained.body;
}

TEST(ClassifyServerTest, SlowzServesEntriesWithVerdictPlanAndTraceId) {
  ServeOptions opts = BaseOptions();
  opts.slow_log.capacity = 4;
  ClassifyServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  const std::string query = "SELECT ?s WHERE { ?s <p> <o> . FILTER(?s > 3) }";
  const HttpResult classified = Fetch(
      server.port(), "POST", "/v1/classify", query,
      "traceparent: 00-0000000000000000deadbeefcafef00d-0123456789abcdef-01"
      "\r\n");
  ASSERT_EQ(classified.status, 200);

  const HttpResult slowz = Fetch(server.port(), "GET", "/slowz");
  ASSERT_EQ(slowz.status, 200) << slowz.body;
  EXPECT_TRUE(Contains(slowz.head,
                       "Content-Type: application/json; charset=utf-8"))
      << slowz.head;
  // Point-in-time diagnostics must never be served from a cache.
  EXPECT_TRUE(Contains(slowz.head, "Cache-Control: no-store")) << slowz.head;
  // The tail sample carries identity, the verdict, and the explained
  // plan whose fragment/strategy match the classify response.
  EXPECT_TRUE(Contains(slowz.body, "\"trace_id\":\"deadbeefcafef00d\""))
      << slowz.body;
  EXPECT_TRUE(Contains(slowz.body, "\"route\":\"/v1/classify\""));
  EXPECT_TRUE(Contains(slowz.body, "\"fragment\":\"cq_f\"")) << slowz.body;
  EXPECT_TRUE(Contains(slowz.body, "\"plan\":{")) << slowz.body;
  EXPECT_TRUE(Contains(slowz.body, "\"queue_wait_ms\":")) << slowz.body;
  EXPECT_TRUE(Contains(slowz.body, "FILTER")) << slowz.body;  // query text

  // /statusz surfaces the tail sampler's admission counters.
  const HttpResult statusz = Fetch(server.port(), "GET", "/statusz");
  EXPECT_TRUE(Contains(statusz.body, "\"slow_log\":{")) << statusz.body;

  // Disabled tail sampling: /slowz is an explicit 404, not an empty doc.
  ServeOptions off = BaseOptions();
  off.enable_slow_log = false;
  ClassifyServer server_off(off);
  ASSERT_TRUE(server_off.Start().ok());
  EXPECT_EQ(Fetch(server_off.port(), "GET", "/slowz").status, 404);
  EXPECT_EQ(server_off.slow_log(), nullptr);
}

TEST(ClassifyServerTest, JobHistogramCarriesExemplarForSampledTrace) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(
      Fetch(server.port(), "POST", "/v1/classify",
            "SELECT ?s WHERE { ?s <p> <o> }",
            "traceparent: "
            "00-0000000000000000deadbeefcafef00d-0123456789abcdef-01\r\n")
          .status,
      200);
  const HttpResult metrics = Fetch(server.port(), "GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_TRUE(Contains(metrics.body, "rwdt_serve_job_seconds_bucket"))
      << "histogram family missing";
  EXPECT_TRUE(
      Contains(metrics.body, "# {trace_id=\"deadbeefcafef00d\"}"))
      << metrics.body;
}

TEST(ClassifyServerTest, TracezRequiresACollectorAndHonorsLimit) {
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  // No TraceCollector installed: /tracez says so with 503.
  EXPECT_EQ(Fetch(server.port(), "GET", "/tracez").status, 503);

  obs::TraceCollector collector;
  ASSERT_TRUE(collector.installed());
  // Sampled request -> worker spans recorded.
  ASSERT_EQ(
      Fetch(server.port(), "POST", "/v1/classify",
            "SELECT ?s WHERE { ?s <p> <o> }",
            "traceparent: "
            "00-0000000000000000deadbeefcafef00d-0123456789abcdef-01\r\n")
          .status,
      200);
  const HttpResult traced = Fetch(server.port(), "GET", "/tracez?limit=2");
  ASSERT_EQ(traced.status, 200);
  EXPECT_TRUE(Contains(traced.head,
                       "Content-Type: application/json; charset=utf-8"))
      << traced.head;
  EXPECT_TRUE(Contains(traced.head, "Cache-Control: no-store")) << traced.head;
  EXPECT_TRUE(Contains(traced.body, "\"events_shown\":")) << traced.body;
  EXPECT_TRUE(Contains(traced.body, "deadbeefcafef00d")) << traced.body;
}

TEST(ClassifyServerTest, ProfilezCapturesUnderLoad) {
  if (!obs::ProfilerSupported()) GTEST_SKIP() << "no backtrace(3) here";
  ClassifyServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());

  // Drive classify traffic while /profilez samples, so the capture has
  // engine/exec work to attribute.
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    while (!stop.load()) {
      Fetch(server.port(), "POST", "/v1/classify",
            "SELECT ?s WHERE { ?s <p> <o> . FILTER(?s > 3) }");
    }
  });
  const HttpResult profile =
      Fetch(server.port(), "GET", "/profilez?seconds=0.3&hz=400");
  stop.store(true);
  driver.join();
  ASSERT_EQ(profile.status, 200) << profile.body;
  EXPECT_TRUE(Contains(profile.head, "Cache-Control: no-store"))
      << profile.head;
  EXPECT_TRUE(Contains(profile.head, "text/plain; charset=utf-8"))
      << profile.head;
  EXPECT_FALSE(profile.body.empty());
  // A bad format parameter is a client error, not a capture.
  EXPECT_EQ(Fetch(server.port(), "GET", "/profilez?format=xml").status, 400);
}

}  // namespace
}  // namespace rwdt::serve
