#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/log_study.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "engine/query_cache.h"
#include "engine/thread_pool.h"

namespace rwdt::engine {
namespace {

core::SourceStudy RunWith(unsigned threads, size_t shards, uint64_t seed,
                          size_t cache_capacity = 1 << 16) {
  EngineOptions opts;
  opts.threads = threads;
  opts.num_shards = shards;
  opts.cache_capacity = cache_capacity;
  Engine engine(opts);
  return engine.AnalyzeLog(loggen::ExampleProfile(1500), seed);
}

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  // The headline guarantee: aggregates are bit-identical for a fixed
  // seed regardless of thread count (shards default to one per thread).
  const core::SourceStudy t1 = RunWith(1, 0, 42);
  const core::SourceStudy t2 = RunWith(2, 0, 42);
  const core::SourceStudy t8 = RunWith(8, 0, 42);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  EXPECT_GT(t1.valid_agg.queries, 0u);
}

TEST(EngineTest, DeterministicAcrossShardCounts) {
  const core::SourceStudy s1 = RunWith(2, 1, 7);
  const core::SourceStudy s7 = RunWith(2, 7, 7);
  const core::SourceStudy s64 = RunWith(2, 64, 7);
  EXPECT_EQ(s1, s7);
  EXPECT_EQ(s1, s64);
}

TEST(EngineTest, DeterministicAcrossThreadsShardsAndChunking) {
  // The full grid the hash-once pipeline must keep bit-identical:
  // {1,2,4} threads x {1,4,16} shards x chunked/unchunked feeds all
  // reduce to the same SourceStudy.
  const auto entries = loggen::GenerateLog(loggen::ExampleProfile(1200), 31);
  core::SourceStudy reference;
  bool have_reference = false;
  for (unsigned threads : {1u, 2u, 4u}) {
    for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
      for (bool chunked : {false, true}) {
        EngineOptions opts;
        opts.threads = threads;
        opts.num_shards = shards;
        Engine engine(opts);
        core::SourceStudy study;
        if (!chunked) {
          study = engine.AnalyzeEntries("grid", false, entries);
        } else {
          EngineStream stream = engine.OpenStream("grid", false);
          constexpr size_t kChunk = 97;  // deliberately ragged boundary
          for (size_t i = 0; i < entries.size(); i += kChunk) {
            std::vector<loggen::LogEntry> chunk(
                entries.begin() + i,
                entries.begin() +
                    std::min(entries.size(), i + kChunk));
            stream.Feed(chunk);
          }
          study = stream.Finish();
        }
        if (!have_reference) {
          reference = study;
          have_reference = true;
          EXPECT_GT(reference.valid_agg.queries, 0u);
        } else {
          ASSERT_EQ(study, reference)
              << "threads=" << threads << " shards=" << shards
              << " chunked=" << chunked;
        }
      }
    }
  }
}

TEST(EngineTest, ScalingSmokeSameStudyAndCacheConservation) {
  // Scaling smoke for the contention-free hot path: the same 50k-entry
  // log at 1 and 4 threads must produce an identical SourceStudy, and
  // cache accounting must follow the shard-local dedup law — only the
  // first occurrence of each distinct text performs a lookup (duplicates
  // are served from the shard's pinned by_id table), so
  // hits + misses == unique + distinct failing texts, and a cold engine
  // sees only misses. A rewiring that sent duplicates back through the
  // cache — or silently bypassed it on first sight — would break this.
  const auto entries = loggen::GenerateLog(loggen::ExampleProfile(50000), 46);
  core::SourceStudy studies[2];
  MetricsSnapshot snaps[2];
  const unsigned thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    EngineOptions opts;
    opts.threads = thread_counts[i];
    Engine engine(opts);
    studies[i] = engine.AnalyzeEntries("smoke", false, entries);
    snaps[i] = engine.Snapshot();
  }
  EXPECT_EQ(studies[0], studies[1]);
  for (int i = 0; i < 2; ++i) {
    // Cold engine: every distinct text (valid or failing) misses once.
    EXPECT_EQ(snaps[i].cache_hits, 0u) << "threads=" << thread_counts[i];
    EXPECT_EQ(snaps[i].cache_misses,
              studies[i].unique + snaps[i].parse_failures)
        << "threads=" << thread_counts[i];
  }
  // Lookup volume itself is thread-count invariant.
  EXPECT_EQ(snaps[0].cache_hits + snaps[0].cache_misses,
            snaps[1].cache_hits + snaps[1].cache_misses);
}

TEST(EngineTest, SpanFeedMatchesVectorFeed) {
  // The zero-copy ingest path feeds borrowed string_views; the legacy
  // path feeds owned LogEntry vectors. Same texts => same SourceStudy,
  // bit for bit, across thread counts and ragged chunking.
  const auto entries = loggen::GenerateLog(loggen::ExampleProfile(800), 63);
  for (unsigned threads : {1u, 4u}) {
    EngineOptions opts;
    opts.threads = threads;

    Engine vec_engine(opts);
    EngineStream vec_stream = vec_engine.OpenStream("span", false);
    Engine span_engine(opts);
    EngineStream span_stream = span_engine.OpenStream("span", false);

    constexpr size_t kChunk = 113;
    for (size_t i = 0; i < entries.size(); i += kChunk) {
      const size_t end = std::min(entries.size(), i + kChunk);
      std::vector<loggen::LogEntry> chunk(entries.begin() + i,
                                          entries.begin() + end);
      vec_stream.Feed(chunk);
      std::vector<std::string_view> views;
      views.reserve(end - i);
      for (size_t j = i; j < end; ++j) views.push_back(entries[j].text);
      span_stream.Feed(std::span<const std::string_view>(views));
    }
    const core::SourceStudy from_vec = vec_stream.Finish();
    const core::SourceStudy from_span = span_stream.Finish();
    EXPECT_EQ(from_vec, from_span) << "threads=" << threads;
    EXPECT_GT(from_span.valid_agg.queries, 0u);
  }
}

TEST(EngineTest, MatchesLegacySingleThreadedPath) {
  loggen::SourceProfile p = loggen::ExampleProfile(1200);
  const core::SourceStudy legacy = core::AnalyzeLog(p, 13);
  EngineOptions opts;
  opts.threads = 4;
  Engine engine(opts);
  EXPECT_EQ(legacy, engine.AnalyzeLog(p, 13));
}

TEST(EngineTest, TinyCacheStillExact) {
  // Evictions force recomputation but must never change the counts.
  const core::SourceStudy big = RunWith(2, 0, 99, /*cache_capacity=*/1 << 16);
  const core::SourceStudy tiny = RunWith(2, 0, 99, /*cache_capacity=*/8);
  EXPECT_EQ(big, tiny);
}

TEST(EngineTest, CacheHitsOnDuplicates) {
  // Duplicates within one stream never touch the cache — the shard's
  // by_id table serves them — so a cold run is all misses. Hits appear
  // when the engine re-analyzes a log it has already seen: every first
  // occurrence then lands on the warm cache.
  loggen::SourceProfile p = loggen::ExampleProfile(2000);
  p.duplicate_factor = 4.0;  // Valid/Unique ~ 4, as in the busiest logs
  EngineOptions opts;
  opts.threads = 2;
  Engine engine(opts);
  const core::SourceStudy study = engine.AnalyzeLog(p, 5);
  const MetricsSnapshot cold = engine.Snapshot();
  EXPECT_GT(study.valid, study.unique);
  EXPECT_EQ(cold.cache_hits, 0u);
  // Every distinct text is analyzed exactly once, duplicates or not.
  EXPECT_EQ(cold.queries_analyzed + cold.parse_failures, cold.cache_misses);
  EXPECT_EQ(cold.entries_processed, study.total);

  const core::SourceStudy rerun = engine.AnalyzeLog(p, 5);
  const MetricsSnapshot warm = engine.Snapshot();
  EXPECT_EQ(study, rerun);
  // Second pass: each distinct text hits the warm cache exactly once.
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  EXPECT_EQ(warm.cache_misses, cold.cache_misses);
  EXPECT_GT(warm.CacheHitRate(), 0.0);
  EXPECT_EQ(warm.queries_analyzed, cold.queries_analyzed);
}

TEST(EngineTest, CacheWarmsAcrossLogs) {
  loggen::SourceProfile p = loggen::ExampleProfile(1000);
  EngineOptions opts;
  opts.threads = 1;
  Engine engine(opts);
  const core::SourceStudy first = engine.AnalyzeLog(p, 21);
  const uint64_t analyzed_after_first = engine.Snapshot().queries_analyzed;
  const core::SourceStudy second = engine.AnalyzeLog(p, 21);
  EXPECT_EQ(first, second);
  // The second pass is served entirely from the warm cache.
  EXPECT_EQ(engine.Snapshot().queries_analyzed, analyzed_after_first);
}

core::LogAggregates RandomAggregates(Rng* rng) {
  core::LogAggregates a;
  a.queries = rng->NextBelow(1000);
  for (auto& h : a.triple_histogram) h = rng->NextBelow(100);
  a.feature_counts[sparql::Feature::kFilter] = rng->NextBelow(50);
  if (rng->NextBool(0.5)) {
    a.feature_counts[sparql::Feature::kUnion] = rng->NextBelow(50);
  }
  a.select_ask_construct = rng->NextBelow(900);
  a.describe = rng->NextBelow(100);
  a.ops_none = rng->NextBelow(10);
  a.ops_and = rng->NextBelow(10);
  a.ops_filter = rng->NextBelow(10);
  a.ops_and_filter = rng->NextBelow(10);
  a.ops_rpq = rng->NextBelow(10);
  a.ops_and_rpq = rng->NextBelow(10);
  a.ops_filter_rpq = rng->NextBelow(10);
  a.ops_and_filter_rpq = rng->NextBelow(10);
  a.cq = rng->NextBelow(500);
  a.cq_f = rng->NextBelow(500);
  a.c2rpq_f = rng->NextBelow(500);
  a.afo_only = rng->NextBelow(500);
  a.well_designed = rng->NextBelow(500);
  a.safe_filters_only = rng->NextBelow(500);
  a.simple_filters_only = rng->NextBelow(500);
  a.cq_fca = rng->NextBelow(100);
  a.cq_htw1 = rng->NextBelow(100);
  a.cq_htw2 = rng->NextBelow(100);
  a.cq_htw3 = rng->NextBelow(100);
  a.cqf_fca = rng->NextBelow(100);
  a.cqf_htw1 = rng->NextBelow(100);
  a.cqf_htw2 = rng->NextBelow(100);
  a.cqf_htw3 = rng->NextBelow(100);
  a.graph_cqf = rng->NextBelow(100);
  a.shapes_with_constants[hypergraph::GraphShape::kStar] =
      rng->NextBelow(40);
  if (rng->NextBool(0.5)) {
    a.shapes_without_constants[hypergraph::GraphShape::kChain] =
        rng->NextBelow(40);
  }
  a.property_paths = rng->NextBelow(100);
  a.path_types[paths::Table8Type::kAStar] = rng->NextBelow(60);
  a.path_ste = rng->NextBelow(60);
  a.path_ctract = rng->NextBelow(60);
  a.path_ttract = rng->NextBelow(60);
  return a;
}

TEST(EngineTest, MergeIsCommutative) {
  Rng rng(2022);
  for (int trial = 0; trial < 20; ++trial) {
    const core::LogAggregates a = RandomAggregates(&rng);
    const core::LogAggregates b = RandomAggregates(&rng);
    core::LogAggregates ab = a;
    core::Merge(b, &ab);
    core::LogAggregates ba = b;
    core::Merge(a, &ba);
    EXPECT_EQ(ab, ba);
  }
}

TEST(EngineTest, MergeIsAssociative) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const core::LogAggregates a = RandomAggregates(&rng);
    const core::LogAggregates b = RandomAggregates(&rng);
    const core::LogAggregates c = RandomAggregates(&rng);
    // (a + b) + c
    core::LogAggregates left = a;
    core::Merge(b, &left);
    core::Merge(c, &left);
    // a + (b + c)
    core::LogAggregates bc = b;
    core::Merge(c, &bc);
    core::LogAggregates right = a;
    core::Merge(bc, &right);
    EXPECT_EQ(left, right);
  }
}

TEST(EngineTest, MergeIdentity) {
  Rng rng(11);
  const core::LogAggregates a = RandomAggregates(&rng);
  core::LogAggregates sum = a;
  core::Merge(core::LogAggregates{}, &sum);
  EXPECT_EQ(sum, a);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  // Wait() is re-usable: a second batch works too.
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 150);
}

TEST(QueryCacheTest, LruEvictsOldest) {
  ShardedQueryCache cache(/*capacity=*/2, /*shards=*/1);
  auto entry = [] {
    auto e = std::make_shared<CachedQuery>();
    e->parse_ok = true;
    return e;
  };
  cache.Put("a", entry());
  cache.Put("b", entry());
  EXPECT_NE(cache.Get("a"), nullptr);  // refresh "a": now b is LRU
  cache.Put("c", entry());             // evicts "b"
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(QueryCacheTest, SharedPtrSurvivesEviction) {
  ShardedQueryCache cache(/*capacity=*/1, /*shards=*/1);
  auto first = std::make_shared<CachedQuery>();
  first->parse_ok = true;
  cache.Put("x", first);
  auto held = cache.Get("x");
  cache.Put("y", std::make_shared<CachedQuery>());  // evicts "x"
  ASSERT_NE(held, nullptr);
  EXPECT_TRUE(held->parse_ok);  // still alive and intact
}

TEST(MetricsTest, SnapshotSummarizesHistogram) {
  Metrics metrics;
  for (int i = 0; i < 1000; ++i) {
    metrics.Record(Stage::kParse, 1000);  // 1 us
  }
  metrics.Record(Stage::kParse, 1 << 20);  // one ~1 ms outlier
  const MetricsSnapshot snap = metrics.Snapshot();
  const StageStats& parse =
      snap.stages[static_cast<size_t>(Stage::kParse)];
  EXPECT_EQ(parse.count, 1001u);
  EXPECT_LE(parse.p50_ns, parse.p90_ns);
  EXPECT_LE(parse.p90_ns, parse.p99_ns);
  EXPECT_GE(parse.max_ns, uint64_t{1} << 19);
  // p50 lands in the bucket containing 1 us, within a factor of sqrt(2).
  EXPECT_GT(parse.p50_ns, 500u);
  EXPECT_LT(parse.p50_ns, 2000u);
}

TEST(MetricsTest, MaxIsExactNotBucketEdge) {
  // max_ns must be the exact observed maximum (CAS-max), not the upper
  // edge of the power-of-two histogram bucket (which would be 4096 for
  // a 3000 ns sample).
  Metrics metrics;
  metrics.Record(Stage::kParse, 1000);
  metrics.Record(Stage::kParse, 3000);
  metrics.Record(Stage::kParse, 2000);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.stages[static_cast<size_t>(Stage::kParse)].max_ns, 3000u);
  EXPECT_NE(snap.ToJson().find("\"max_us\""), std::string::npos);
}

TEST(MetricsTest, JsonContainsHeadlineFields) {
  EngineOptions opts;
  opts.threads = 2;
  Engine engine(opts);
  engine.AnalyzeLog(loggen::ExampleProfile(300), 3);
  const std::string json = engine.Snapshot().ToJson();
  EXPECT_NE(json.find("\"queries_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"hypergraph\""), std::string::npos);
  const std::string text = engine.Snapshot().ToText();
  EXPECT_NE(text.find("cache"), std::string::npos);
}

}  // namespace
}  // namespace rwdt::engine
