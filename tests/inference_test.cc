#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "inference/crx.h"
#include "inference/kore.h"
#include "inference/rwr.h"
#include "inference/soa.h"
#include "regex/automaton.h"
#include "regex/fragments.h"
#include "regex/glushkov.h"
#include "regex/parser.h"
#include "regex/sampler.h"

namespace rwdt::inference {
namespace {

using regex::Word;

class InferenceTest : public ::testing::Test {
 protected:
  Word W(const std::string& s) {
    Word w;
    for (char c : s) w.push_back(dict_.Intern(std::string(1, c)));
    return w;
  }

  regex::RegexPtr Parse(const std::string& s) {
    auto r = regex::ParseRegex(s, &dict_);
    EXPECT_TRUE(r.ok()) << s;
    return r.value();
  }

  /// Samples `count` words from L(e) (plus the shortest word).
  std::vector<Word> SampleFrom(const std::string& expr, int count,
                               uint64_t seed) {
    std::vector<Word> sample;
    const regex::Nfa nfa = regex::ToNfa(Parse(expr));
    Rng rng(seed);
    auto shortest = regex::ShortestAccepted(regex::Determinize(nfa));
    if (shortest.has_value()) sample.push_back(*shortest);
    for (int i = 0; i < count; ++i) {
      Word w;
      if (regex::SampleAcceptedWord(nfa, 12, rng, &w)) sample.push_back(w);
    }
    return sample;
  }

  Interner dict_;
};

TEST_F(InferenceTest, SoaBuildsGarciaVidalAutomaton) {
  const Soa soa = BuildSoa({W("ab"), W("ba"), W("")});
  EXPECT_TRUE(soa.accepts_epsilon);
  EXPECT_TRUE(soa.Accepts(W("ab")));
  EXPECT_TRUE(soa.Accepts(W("ba")));
  EXPECT_TRUE(soa.Accepts(W("")));
  // 2T-INF generalization: "aba" follows existing edges a->b, b->a.
  EXPECT_TRUE(soa.Accepts(W("aba")));
  EXPECT_FALSE(soa.Accepts(W("aa")));
}

TEST_F(InferenceTest, SoreCoversSampleAlways) {
  const std::vector<std::vector<Word>> samples = {
      {W("ab"), W("b")},
      {W("abc"), W("acb"), W("abcabc")},
      {W("a"), W("aa"), W("aaa")},
      {W(""), W("ab")},
      {W("abab"), W("ab")},
  };
  for (const auto& sample : samples) {
    const auto result = InferSore(sample);
    const regex::Nfa nfa = regex::ToNfa(result.expression);
    for (const auto& w : sample) {
      EXPECT_TRUE(nfa.Accepts(w));
    }
    EXPECT_TRUE(regex::IsSore(result.expression));
  }
}

TEST_F(InferenceTest, SoreRecoversSimpleTargets) {
  // Characteristic-ish samples for simple SOREs recover an equivalent
  // expression with no repairs.
  struct Case {
    std::string target;
    std::vector<std::string> words;
  };
  const std::vector<Case> cases = {
      {"ab", {"ab"}},
      {"a+", {"a", "aa"}},
      {"a?b", {"ab", "b"}},
      {"(a|b)c", {"ac", "bc"}},
      {"a(b|c)*d", {"ad", "abd", "acd", "abcd", "acbd", "abbd"}},
      {"(a|b)+", {"a", "b", "ab", "ba", "aa", "bb"}},
  };
  for (const auto& c : cases) {
    std::vector<Word> sample;
    for (const auto& s : c.words) sample.push_back(W(s));
    const auto result = InferSore(sample);
    EXPECT_EQ(result.repairs, 0u) << c.target;
    EXPECT_TRUE(regex::AreEquivalent(regex::ToDfa(result.expression),
                                     regex::ToDfa(Parse(c.target))))
        << c.target << " inferred "
        << result.expression->ToString(dict_);
  }
}

TEST_F(InferenceTest, SoreOnEmptySample) {
  const auto result = InferSore({});
  EXPECT_TRUE(regex::IsEmptyLanguage(regex::ToDfa(result.expression)));
}

TEST_F(InferenceTest, ChainInferenceRecoversChainTargets) {
  struct Case {
    std::string target;
    std::vector<std::string> words;
  };
  const std::vector<Case> cases = {
      {"a+b+", {"ab", "aab", "abb"}},
      {"a?b", {"ab", "b"}},
      {"(a|b)c*", {"a", "b", "ac", "bcc"}},
      {"ab?c", {"ac", "abc"}},
  };
  for (const auto& c : cases) {
    std::vector<Word> sample;
    for (const auto& s : c.words) sample.push_back(W(s));
    auto chain = InferChain(sample);
    ASSERT_TRUE(chain.has_value()) << c.target;
    EXPECT_TRUE(regex::AreEquivalent(regex::ToDfa(chain->ToRegex()),
                                     regex::ToDfa(Parse(c.target))))
        << c.target << " inferred "
        << chain->ToRegex()->ToString(dict_);
  }
}

TEST_F(InferenceTest, ChainInferenceMergesInterleavedSymbols) {
  // "aba" forces a and b into one factor: inferred (a|b)+.
  auto chain = InferChain({W("aba")});
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->factors.size(), 1u);
  EXPECT_EQ(chain->factors[0].symbols.size(), 2u);
  EXPECT_EQ(chain->factors[0].modifier, regex::FactorModifier::kPlus);
}

TEST_F(InferenceTest, ChainInferenceCoversSample) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<Word> sample;
    for (int i = 0; i < 6; ++i) {
      sample.push_back(regex::SampleWord(3, 6, rng));
    }
    auto chain = InferChain(sample);
    if (!chain.has_value()) continue;
    const regex::Nfa nfa = regex::ToNfa(chain->ToRegex());
    for (const auto& w : sample) {
      EXPECT_TRUE(nfa.Accepts(w));
    }
  }
}

TEST_F(InferenceTest, KoreInferenceCoversAndBoundsOccurrences) {
  // aba is not a SORE language; 2-ORE inference handles it.
  const std::vector<Word> sample = {W("aba"), W("abba")};
  const auto e = InferKore(sample, 2);
  EXPECT_TRUE(regex::IsKore(e, 2));
  const regex::Nfa nfa = regex::ToNfa(e);
  for (const auto& w : sample) EXPECT_TRUE(nfa.Accepts(w));
}

TEST_F(InferenceTest, BestKorePicksSmallK) {
  size_t k = 0;
  // Sample from a SORE: k = 1 suffices.
  InferBestKore({W("ab"), W("b")}, 3, &k);
  EXPECT_EQ(k, 1u);
}

TEST_F(InferenceTest, SoreInferenceFromSampledSores) {
  // Property: inferring from generated samples of SORE targets always
  // covers the sample; with rich samples and no repairs, the inferred
  // language is contained in or equal to moderate generalizations.
  const std::vector<std::string> targets = {"a(b|c)d?", "(a|b)*",
                                            "ab+c?", "a?(b|c)+"};
  for (const auto& t : targets) {
    auto sample = SampleFrom(t, 40, 1234);
    ASSERT_FALSE(sample.empty()) << t;
    const auto result = InferSore(sample);
    const regex::Nfa nfa = regex::ToNfa(result.expression);
    for (const auto& w : sample) EXPECT_TRUE(nfa.Accepts(w)) << t;
  }
}

}  // namespace
}  // namespace rwdt::inference
