#include <gtest/gtest.h>

#include "schema/json_schema.h"
#include "tree/json.h"

namespace rwdt::schema {
namespace {

using tree::JsonPtr;
using tree::ParseJson;

JsonSchemaDoc Schema(const std::string& s) {
  Interner dict;
  auto doc = ParseJsonSchema(s, &dict);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.value();
}

JsonPtr V(const std::string& s) {
  Interner dict;
  auto r = ParseJson(s, &dict);
  EXPECT_TRUE(r.ok()) << s;
  return r.value();
}

TEST(JsonSchemaTest, TypeAssertions) {
  auto doc = Schema(R"({"type": "string"})");
  EXPECT_TRUE(ValidateJsonSchema(doc, V("\"hi\"")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V("42")));
}

TEST(JsonSchemaTest, ObjectPropertiesAndRequired) {
  auto doc = Schema(R"({
    "type": "object",
    "properties": {"name": {"type": "string"},
                   "age": {"type": "number", "minimum": 0}},
    "required": ["name"]})");
  EXPECT_TRUE(ValidateJsonSchema(doc, V(R"({"name":"a","age":3})")));
  EXPECT_TRUE(ValidateJsonSchema(doc, V(R"({"name":"a"})")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V(R"({"age":3})")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V(R"({"name":"a","age":-1})")));
  // Schema-mixed by default: unknown properties allowed (Section 4.5).
  EXPECT_TRUE(ValidateJsonSchema(doc, V(R"({"name":"a","zz":1})")));
}

TEST(JsonSchemaTest, SchemaFullMode) {
  auto doc = Schema(R"({
    "type": "object",
    "properties": {"name": {"type": "string"}},
    "additionalProperties": false})");
  EXPECT_TRUE(ValidateJsonSchema(doc, V(R"({"name":"a"})")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V(R"({"name":"a","zz":1})")));
  EXPECT_TRUE(AnalyzeJsonSchema(doc).schema_full);
}

TEST(JsonSchemaTest, ArraysAndBounds) {
  auto doc = Schema(R"({
    "type": "array", "items": {"type": "number"},
    "minItems": 1, "maxItems": 3})");
  EXPECT_TRUE(ValidateJsonSchema(doc, V("[1,2]")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V("[]")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V("[1,2,3,4]")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V("[1,\"x\"]")));
}

TEST(JsonSchemaTest, NegationAsForbiddenWorkaround) {
  // Baazizi et al.: negation is often a workaround for a missing
  // "forbidden" keyword (Section 4.5).
  auto doc = Schema(R"({
    "allOf": [
      {"type": "object"},
      {"not": {"properties": {"secret": {}}, "required": ["secret"]}}]})");
  EXPECT_TRUE(ValidateJsonSchema(doc, V(R"({"a":1})")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V(R"({"secret":1})")));
  EXPECT_TRUE(AnalyzeJsonSchema(doc).uses_negation);
}

TEST(JsonSchemaTest, AnyOfAndEnum) {
  auto doc = Schema(R"({"anyOf": [{"enum": ["a", "b"]},
                                  {"type": "number"}]})");
  // Enum values are compared on serialized form.
  EXPECT_TRUE(ValidateJsonSchema(doc, V("\"a\"")));
  EXPECT_TRUE(ValidateJsonSchema(doc, V("7")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V("\"c\"")));
}

TEST(JsonSchemaTest, RecursiveSchemaViaRefs) {
  auto doc = Schema(R"({
    "$defs": {
      "tree": {"type": "object",
               "properties": {"value": {"type": "number"},
                              "kids": {"type": "array",
                                       "items": {"$ref": "#/$defs/tree"}}},
               "required": ["value"]}},
    "$ref": "#/$defs/tree"})");
  EXPECT_TRUE(ValidateJsonSchema(
      doc, V(R"({"value":1,"kids":[{"value":2},{"value":3,"kids":[]}]})")));
  EXPECT_FALSE(ValidateJsonSchema(doc, V(R"({"kids":[]})")));
  EXPECT_TRUE(AnalyzeJsonSchema(doc).recursive);
}

TEST(JsonSchemaTest, DepthOfNonRecursiveSchema) {
  auto doc = Schema(R"({
    "type": "object",
    "properties": {"a": {"type": "object",
                         "properties": {"b": {"type": "array",
                                              "items": {"type":"number"}}}}}
    })");
  auto stats = AnalyzeJsonSchema(doc);
  EXPECT_FALSE(stats.recursive);
  EXPECT_EQ(stats.max_depth, 3u);  // object > object > array
  EXPECT_FALSE(stats.uses_negation);
  EXPECT_FALSE(stats.schema_full);
}

TEST(JsonSchemaTest, BooleanSchemas) {
  EXPECT_TRUE(ValidateJsonSchema(Schema("true"), V("123")));
  EXPECT_FALSE(ValidateJsonSchema(Schema("false"), V("123")));
}

}  // namespace
}  // namespace rwdt::schema
