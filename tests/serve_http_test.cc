// Loopback tests for serve::HttpServer, the one hand-rolled HTTP stack
// in the tree: keep-alive framing, body limits, error statuses, and
// accept-stage shedding. Everything runs against a raw socket client so
// the bytes on the wire are exactly what a real peer would send.

#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace rwdt::serve {
namespace {

struct HttpResult {
  int status = 0;
  std::string body;
  std::string head;  // status line + headers
  bool transport_ok = false;
};

/// A keep-alive-capable raw-socket client: one connection, many
/// request/response exchanges framed by Content-Length.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  HttpResult Exchange(const std::string& method, const std::string& target,
                      const std::string& body = "",
                      const std::string& extra_headers = "") {
    std::string request = method + " " + target +
                          " HTTP/1.1\r\nHost: t\r\n" + extra_headers;
    if (!body.empty() || method == "POST") {
      request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += "\r\n" + body;
    if (!SendRaw(request)) return {};
    return ReadResponse();
  }

  HttpResult ReadResponse() {
    HttpResult result;
    char chunk[4096];
    size_t head_end;
    while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return result;
      buf_.append(chunk, static_cast<size_t>(n));
    }
    result.head = buf_.substr(0, head_end);
    size_t body_len = 0;
    const size_t cl = result.head.find("Content-Length:");
    if (cl != std::string::npos) {
      body_len = static_cast<size_t>(std::atoll(result.head.c_str() + cl + 15));
    }
    while (buf_.size() < head_end + 4 + body_len) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return result;
      buf_.append(chunk, static_cast<size_t>(n));
    }
    result.body = buf_.substr(head_end + 4, body_len);
    buf_.erase(0, head_end + 4 + body_len);
    if (result.head.compare(0, 9, "HTTP/1.1 ") == 0) {
      result.status = std::atoi(result.head.c_str() + 9);
    }
    result.transport_ok = true;
    return result;
  }

  /// True once the peer closes (EOF) with no further data.
  bool AtEof() {
    char c;
    return ::recv(fd_, &c, 1, 0) <= 0;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

HttpServer::Options BaseOptions() {
  HttpServer::Options opts;
  opts.port = 0;
  opts.handler_threads = 2;
  opts.io_timeout_ms = 3000;
  return opts;
}

TEST(QueryParamTest, ExtractsValues) {
  EXPECT_EQ(QueryParam("a=1&b=2", "a"), "1");
  EXPECT_EQ(QueryParam("a=1&b=2", "b"), "2");
  EXPECT_EQ(QueryParam("a=1&b=2", "c", "fallback"), "fallback");
  EXPECT_EQ(QueryParam("", "a", "x"), "x");
  EXPECT_EQ(QueryParam("flag&b=2", "b"), "2");
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server(BaseOptions());
  server.Handle("GET", "/echo", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "q=" + req.query;
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    const HttpResult r =
        client.Exchange("GET", "/echo?n=" + std::to_string(i));
    ASSERT_TRUE(r.transport_ok) << "request " << i;
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "q=n=" + std::to_string(i));
  }
  EXPECT_EQ(server.requests_served(), 5u);
  EXPECT_EQ(server.connections_accepted(), 1u);
  server.Stop();
}

TEST(HttpServerTest, PostBodyAndHeadersRoundTrip) {
  HttpServer server(BaseOptions());
  server.Handle("POST", "/submit", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = std::string(req.Header("x-tenant")) + "|" + req.body;
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  const HttpResult r = client.Exchange("POST", "/submit", "hello body",
                                       "X-Tenant: acme\r\n");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "acme|hello body");
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsAreServedInOrder) {
  HttpServer server(BaseOptions());
  server.Handle("GET", "/a", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "A";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.SendRaw(
      "GET /a HTTP/1.1\r\nHost: t\r\n\r\nGET /a HTTP/1.1\r\nHost: t\r\n\r\n"));
  const HttpResult first = client.ReadResponse();
  const HttpResult second = client.ReadResponse();
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body, "A");
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body, "A");
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyGets413AndCloses) {
  HttpServer::Options opts = BaseOptions();
  opts.max_body_bytes = 64;
  HttpServer server(opts);
  server.Handle("POST", "/submit", [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  const HttpResult r =
      client.Exchange("POST", "/submit", std::string(1000, 'x'));
  EXPECT_EQ(r.status, 413);
  // The server refuses to read the oversized body and closes.
  EXPECT_TRUE(client.AtEof());
  server.Stop();
}

TEST(HttpServerTest, OversizedHeadGets431) {
  HttpServer::Options opts = BaseOptions();
  opts.max_head_bytes = 256;
  HttpServer server(opts);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  const HttpResult r = client.Exchange(
      "GET", "/x", "", "X-Padding: " + std::string(1000, 'p') + "\r\n");
  EXPECT_EQ(r.status, 431);
  server.Stop();
}

TEST(HttpServerTest, UnknownPath404KnownPathWrongMethod405) {
  HttpServer server(BaseOptions());
  server.Handle("POST", "/only-post", [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  EXPECT_EQ(client.Exchange("GET", "/nowhere").status, 404);
  const HttpResult r = client.Exchange("GET", "/only-post");
  EXPECT_EQ(r.status, 405);
  EXPECT_NE(r.head.find("Allow: POST"), std::string::npos) << r.head;
  server.Stop();
}

TEST(HttpServerTest, MalformedContentLengthGets400) {
  HttpServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.SendRaw(
      "POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: banana\r\n\r\n"));
  EXPECT_EQ(client.ReadResponse().status, 400);
  server.Stop();
}

TEST(HttpServerTest, ChunkedTransferEncodingGets501) {
  HttpServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.SendRaw(
      "POST /x HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n"));
  EXPECT_EQ(client.ReadResponse().status, 501);
  server.Stop();
}

TEST(HttpServerTest, QuitQuitQuitReleasesWaitForQuit) {
  HttpServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.WaitForQuit(0));

  TestClient client(server.port());
  EXPECT_EQ(client.Exchange("GET", "/quitquitquit").status, 200);
  EXPECT_TRUE(server.WaitForQuit(2000));
  server.Stop();
}

TEST(HttpServerTest, AcceptQueueOverflowShedsWith503RetryAfter) {
  HttpServer::Options opts = BaseOptions();
  opts.handler_threads = 1;
  opts.max_pending = 1;
  HttpServer server(opts);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> in_handler{0};
  server.Handle("GET", "/slow", [&](const HttpRequest&) {
    in_handler.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    HttpResponse resp;
    resp.body = "slow done";
    return resp;
  });
  ASSERT_TRUE(server.Start().ok());

  // First connection occupies the only handler thread.
  TestClient busy(server.port());
  ASSERT_TRUE(busy.SendRaw("GET /slow HTTP/1.1\r\nHost: t\r\n\r\n"));
  for (int i = 0; i < 200 && in_handler.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(in_handler.load(), 1);

  // Second connection fills the pending queue (it is accepted but no
  // handler is free to serve it yet).
  TestClient queued(server.port());
  ASSERT_TRUE(queued.SendRaw("GET /slow HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Third connection must be shed with a real HTTP response — never a
  // silent drop.
  TestClient shed(server.port());
  const HttpResult r = shed.ReadResponse();
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.head.find("Retry-After:"), std::string::npos) << r.head;
  EXPECT_GE(server.connections_shed(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // Both the busy and the queued connection complete normally.
  EXPECT_EQ(busy.ReadResponse().status, 200);
  EXPECT_EQ(queued.ReadResponse().status, 200);
  server.Stop();
}

TEST(HttpServerTest, StopWithNoTrafficIsClean) {
  HttpServer server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

}  // namespace
}  // namespace rwdt::serve
