// Property sweeps on the hypergraph machinery: ghw<=1 coincides with GYO
// acyclicity, hypertree width is monotone in k, and shape classes nest
// as Table 7's cumulative presentation requires.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "hypergraph/hypergraph.h"

namespace rwdt::hypergraph {
namespace {

Hypergraph RandomHypergraph(Rng& rng, size_t vertices, size_t edges) {
  Hypergraph h;
  for (size_t e = 0; e < edges; ++e) {
    std::vector<uint32_t> edge;
    const size_t width = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < width; ++i) {
      edge.push_back(static_cast<uint32_t>(rng.NextBelow(vertices)));
    }
    h.AddEdge(std::move(edge));
  }
  return h;
}

class HgPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HgPropertyTest, GhwOneIffAcyclic) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const Hypergraph h = RandomHypergraph(rng, 6, 2 + rng.NextBelow(7));
    auto ghw1 = HypertreeWidthAtMost(h, 1);
    ASSERT_TRUE(ghw1.has_value());
    EXPECT_EQ(*ghw1, IsAcyclic(h));
  }
}

TEST_P(HgPropertyTest, WidthIsMonotone) {
  Rng rng(GetParam() + 100);
  for (int round = 0; round < 25; ++round) {
    const Hypergraph h = RandomHypergraph(rng, 7, 3 + rng.NextBelow(8));
    bool previous = false;
    for (size_t k = 1; k <= 4; ++k) {
      auto at_most = HypertreeWidthAtMost(h, k);
      ASSERT_TRUE(at_most.has_value());
      if (previous) {
        EXPECT_TRUE(*at_most) << "monotonicity broke at " << k;
      }
      previous = *at_most;
    }
    // Every hypergraph with m edges has ghw <= m.
    auto all = HypertreeWidthAtMost(h, h.edges.size());
    ASSERT_TRUE(all.has_value());
    EXPECT_TRUE(*all);
  }
}

TEST_P(HgPropertyTest, FreeConnexImpliesAcyclic) {
  Rng rng(GetParam() + 200);
  for (int round = 0; round < 40; ++round) {
    const Hypergraph h = RandomHypergraph(rng, 6, 2 + rng.NextBelow(6));
    std::vector<uint32_t> free;
    for (uint32_t v = 0; v < h.num_vertices; ++v) {
      if (rng.NextBool(0.4)) free.push_back(v);
    }
    if (IsFreeConnexAcyclic(h, free)) {
      EXPECT_TRUE(IsAcyclic(h));
    }
    // All variables free: free-connex iff acyclic.
    std::vector<uint32_t> all;
    for (uint32_t v = 0; v < h.num_vertices; ++v) all.push_back(v);
    EXPECT_EQ(IsFreeConnexAcyclic(h, all), IsAcyclic(h));
  }
}

TEST_P(HgPropertyTest, ShapeClassesNest) {
  // The shape taxonomy must respect the cumulative ordering of Table 7:
  // classifying a graph as some class means every later (more general)
  // class also admits it. Spot-check with the treewidth oracle.
  Rng rng(GetParam() + 300);
  for (int round = 0; round < 30; ++round) {
    graph::SimpleGraph g =
        graph::MakeRandomGraph(8, 2 + rng.NextBelow(12), rng);
    const GraphShape shape = ClassifyShape(g);
    const auto tw = graph::TreewidthExact(g);
    ASSERT_TRUE(tw.has_value());
    switch (shape) {
      case GraphShape::kNoEdge:
        EXPECT_EQ(g.NumEdges(), 0u);
        break;
      case GraphShape::kSingleEdge:
        EXPECT_EQ(g.NumEdges(), 1u);
        break;
      case GraphShape::kChain:
      case GraphShape::kStar:
      case GraphShape::kTree:
        EXPECT_TRUE(graph::IsForest(g));
        EXPECT_EQ(g.Components().size(), 1u);
        break;
      case GraphShape::kForest:
        EXPECT_TRUE(graph::IsForest(g));
        break;
      case GraphShape::kTreewidth2:
        EXPECT_FALSE(graph::IsForest(g));
        EXPECT_LE(*tw, 2u);
        break;
      case GraphShape::kTreewidth3:
        EXPECT_EQ(*tw, 3u);
        break;
      case GraphShape::kOther:
        EXPECT_GT(*tw, 3u);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HgPropertyTest,
                         ::testing::Values(3, 17, 29, 41));

}  // namespace
}  // namespace rwdt::hypergraph
