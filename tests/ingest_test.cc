#include "ingest/ingest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "loggen/corruptor.h"
#include "obs/registry.h"
#include "loggen/log_text.h"
#include "loggen/sparql_gen.h"
#include "sparql/parser.h"

namespace rwdt::ingest {
namespace {

uint64_t ErrorCount(const core::SourceStudy& study, ErrorClass c) {
  return study.errors[static_cast<size_t>(c)];
}

uint64_t TotalErrors(const core::SourceStudy& study) {
  uint64_t n = 0;
  for (const uint64_t e : study.errors) n += e;
  return n;
}

// Golden mapping: each kind of broken line lands in exactly the taxonomy
// class the design doc promises.
TEST(IngestTest, ClassifiesBrokenLinesIntoTaxonomy) {
  std::stringstream in;
  in << "SELECT ?x WHERE { ?x a ?y }\n"            // valid
     << "SELECT ?x WHERE { ?x \"unterminated }\n"  // lex: bad literal
     << "SELECT ?x WHERE {\n"                      // parse: open group
     << "SELECT ?x WHERE { [ a ?y ] }\n"           // unsupported: bnode list
     << "SELECT ?x WHERE { ?x a \xff\xfe }\n"      // encoding: bad UTF-8
     << "SELECT ?x WHERE { ?x a ?y }\n";           // duplicate of line 1

  auto r = IngestStream(in);
  ASSERT_TRUE(r.ok()) << r.error_message();
  const IngestReport& report = r.value();

  EXPECT_EQ(report.lines_read, 6u);
  EXPECT_EQ(report.study.total, 6u);
  EXPECT_EQ(report.study.valid, 2u);
  EXPECT_EQ(report.study.unique, 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kLexError), 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kParseError), 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kUnsupportedFeature), 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kEncodingError), 1u);
  EXPECT_EQ(report.study.total, report.study.valid + TotalErrors(report.study));
}

TEST(IngestTest, OversizeLineRejectedAsResourceExhausted) {
  IngestOptions opts;
  opts.max_line_bytes = 32;
  std::stringstream in;
  in << "SELECT ?x WHERE { ?x a ?y }\n"
     << std::string(1000, 'x') << "\n"
     << "SELECT ?x WHERE { ?x a ?y }\n";

  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().study.total, 3u);
  EXPECT_EQ(r.value().study.valid, 2u);
  EXPECT_EQ(ErrorCount(r.value().study, ErrorClass::kResourceExhausted), 1u);
  // The whole stream was consumed even though the long line wasn't kept.
  EXPECT_EQ(r.value().bytes_read, 28u + 1001u + 28u);
}

TEST(IngestTest, ParserStepBudgetRejectsAsResourceExhausted) {
  IngestOptions opts;
  opts.engine.parse_limits.max_parser_steps = 4;
  std::stringstream in;
  in << "ASK { ?x a ?y }\n"  // fits in four steps? no — also rejected
     << "SELECT ?a ?b ?c WHERE { ?a ?b ?c . ?c ?b ?a . ?b ?a ?c }\n";

  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().study.total, 2u);
  // Everything over budget lands in resource_exhausted, nothing aborts.
  EXPECT_EQ(r.value().study.valid +
                ErrorCount(r.value().study, ErrorClass::kResourceExhausted),
            2u);
  EXPECT_GE(ErrorCount(r.value().study, ErrorClass::kResourceExhausted), 1u);
}

TEST(IngestTest, TsvFormatSplitsSourceColumn) {
  IngestOptions opts;
  opts.format = LogFormat::kTsv;
  std::stringstream in;
  in << "alpha\tSELECT ?x WHERE { ?x a ?y }\n"
     << "alpha\tSELECT ?y WHERE { ?y a ?x }\n"
     << "beta\tASK { ?s ?p ?o }\n"
     << "no tab on this line\n";

  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  const IngestReport& report = r.value();
  EXPECT_EQ(report.study.total, 4u);
  EXPECT_EQ(report.study.valid, 3u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kParseError), 1u);
  ASSERT_EQ(report.per_source.size(), 2u);
  EXPECT_EQ(report.per_source.at("alpha"), 2u);
  EXPECT_EQ(report.per_source.at("beta"), 1u);
}

TEST(IngestTest, BlankLinesSkippedWithoutCounting) {
  std::stringstream in;
  in << "\n"
     << "   \t \n"
     << "ASK { ?s ?p ?o }\n"
     << "\n";
  auto r = IngestStream(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lines_read, 4u);
  EXPECT_EQ(r.value().blank_lines, 3u);
  EXPECT_EQ(r.value().study.total, 1u);
  EXPECT_EQ(r.value().study.valid, 1u);
}

TEST(IngestTest, MetricsJsonCarriesErrorCounts) {
  std::stringstream in;
  in << "ASK { ?s ?p ?o }\n"
     << "\xff not utf8\n";
  auto r = IngestStream(in);
  ASSERT_TRUE(r.ok());
  const std::string json = r.value().metrics.ToJson();
  EXPECT_NE(json.find("\"errors\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"encoding_error\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"entries_valid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"entries_rejected\":1"), std::string::npos) << json;
}

TEST(IngestTest, RejectsNonsensicalOptions) {
  IngestOptions zero_chunk;
  zero_chunk.chunk_entries = 0;
  EXPECT_FALSE(zero_chunk.Validate().ok());

  IngestOptions zero_line;
  zero_line.max_line_bytes = 0;
  EXPECT_FALSE(zero_line.Validate().ok());

  IngestOptions bad_engine;
  bad_engine.engine.parse_limits.max_parser_steps = 0;
  EXPECT_FALSE(bad_engine.Validate().ok());

  std::stringstream in;
  in << "ASK { ?s ?p ?o }\n";
  EXPECT_FALSE(IngestStream(in, zero_chunk).ok());
}

TEST(IngestTest, MissingFileIsNotFound) {
  auto r = IngestFile("/nonexistent/query.log");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST(CorruptorTest, DeterministicInSeed) {
  loggen::SourceProfile profile = loggen::ExampleProfile(200);
  const auto pristine = loggen::GenerateLog(profile, 5);

  auto a = pristine, b = pristine, c = pristine;
  const auto sa = loggen::CorruptLog(&a, 17);
  const auto sb = loggen::CorruptLog(&b, 17);
  const auto sc = loggen::CorruptLog(&c, 18);
  EXPECT_EQ(sa.corrupted_indices, sb.corrupted_indices);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
  // A different seed picks a different victim set (overwhelmingly likely
  // for 200 entries at the default 20% rate).
  EXPECT_NE(sa.corrupted_indices, sc.corrupted_indices);
}

TEST(CorruptorTest, EnsureInvalidMeansCorruptedNeverParses) {
  loggen::SourceProfile profile = loggen::ExampleProfile(200);
  auto log = loggen::GenerateLog(profile, 5);
  loggen::CorruptionOptions opts;
  opts.rate = 1.0;
  const auto summary = loggen::CorruptLog(&log, 23, opts);
  EXPECT_EQ(summary.corrupted, log.size());
  Interner dict;
  for (const auto& entry : log) {
    EXPECT_FALSE(sparql::ParseSparql(entry.text, &dict).ok())
        << "still parses: " << entry.text;
  }
}

// The tentpole property: corruption at ANY rate never changes what the
// engine reports for the surviving queries. The Valid-subset aggregates
// of a corrupted ingest run are bit-identical to analyzing only the
// uncorrupted entries directly — for every thread count and chunk size.
TEST(IngestTest, CorruptionNeverPerturbsValidSubsetAggregates) {
  loggen::SourceProfile profile = loggen::ExampleProfile(300);
  const auto pristine = loggen::GenerateLog(profile, 11);

  for (const double rate : {0.0, 0.2, 0.5, 1.0}) {
    auto corrupted = pristine;
    loggen::CorruptionOptions copts;
    copts.rate = rate;
    const auto summary = loggen::CorruptLog(&corrupted, 29, copts);

    // Reference: the surviving (untouched) entries through the engine.
    std::vector<loggen::LogEntry> surviving;
    size_t next_corrupt = 0;
    for (size_t i = 0; i < pristine.size(); ++i) {
      if (next_corrupt < summary.corrupted_indices.size() &&
          summary.corrupted_indices[next_corrupt] == i) {
        ++next_corrupt;
        continue;
      }
      surviving.push_back(pristine[i]);
    }
    engine::Engine reference{engine::EngineOptions{}};
    const core::SourceStudy expected =
        reference.AnalyzeEntries("ref", false, surviving);

    const std::string text = [&corrupted] {
      std::stringstream out;
      loggen::WriteLogText(corrupted, out);
      return out.str();
    }();

    core::SourceStudy first;
    bool have_first = false;
    for (const unsigned threads : {1u, 2u, 8u}) {
      for (const size_t chunk : {size_t{1}, size_t{64}, size_t{4096}}) {
        IngestOptions opts;
        opts.source_name = "ref";
        opts.engine.threads = threads;
        opts.chunk_entries = chunk;
        std::stringstream in(text);
        auto r = IngestStream(in, opts);
        ASSERT_TRUE(r.ok()) << r.error_message();
        const core::SourceStudy& got = r.value().study;

        EXPECT_EQ(got.total, pristine.size());
        EXPECT_EQ(got.valid, expected.valid) << "rate " << rate;
        EXPECT_EQ(got.unique, expected.unique) << "rate " << rate;
        EXPECT_TRUE(got.valid_agg == expected.valid_agg) << "rate " << rate;
        EXPECT_TRUE(got.unique_agg == expected.unique_agg)
            << "rate " << rate;
        if (!have_first) {
          first = got;
          have_first = true;
        } else {
          // Full study (including per-class error counts) is identical
          // across every thread count and chunk size.
          EXPECT_TRUE(got == first)
              << "rate " << rate << " threads " << threads << " chunk "
              << chunk;
        }
      }
    }
  }
}

// --- Reader differential tests -----------------------------------------
//
// The block pipeline (BlockReader + SWAR LineScanner + string_view
// chunks) must be observationally identical to the legacy
// istream/getline reader: same study, same line/byte accounting, same
// per-source split — for every line-ending dialect and every block size,
// including the degenerate 1-byte blocks that put a boundary inside
// every record, every CRLF pair, and every UTF-8 sequence.

IngestReport MustIngest(const std::string& text, const IngestOptions& opts) {
  std::stringstream in(text);
  auto r = IngestStream(in, opts);
  EXPECT_TRUE(r.ok()) << r.error_message();
  return std::move(r).value();
}

void ExpectSameObservables(const IngestReport& legacy,
                           const IngestReport& block,
                           const std::string& context) {
  EXPECT_TRUE(legacy.study == block.study) << context;
  EXPECT_EQ(legacy.lines_read, block.lines_read) << context;
  EXPECT_EQ(legacy.blank_lines, block.blank_lines) << context;
  EXPECT_EQ(legacy.bytes_read, block.bytes_read) << context;
  EXPECT_EQ(legacy.per_source, block.per_source) << context;
}

TEST(IngestReaderDifferentialTest, BitIdenticalOnCorruptedLogsAllDialects) {
  loggen::SourceProfile profile = loggen::ExampleProfile(150);
  auto log = loggen::GenerateLog(profile, 19);
  loggen::CorruptionOptions copts;
  copts.rate = 0.3;
  loggen::CorruptLog(&log, 31, copts);

  for (const bool tsv : {false, true}) {
    for (const bool crlf : {false, true}) {
      for (const bool final_newline : {false, true}) {
        loggen::LogTextOptions lopts;
        lopts.crlf = crlf;
        lopts.final_newline = final_newline;
        std::stringstream out;
        if (tsv) {
          loggen::WriteLogTsv(log, "src", out, lopts);
        } else {
          loggen::WriteLogText(log, out, lopts);
        }
        const std::string text = out.str();

        IngestOptions opts;
        opts.format = tsv ? LogFormat::kTsv : LogFormat::kPlain;
        opts.engine.threads = 1;
        opts.reader = ReaderKind::kLegacy;
        const IngestReport legacy = MustIngest(text, opts);
        EXPECT_EQ(legacy.reader, ReaderKind::kLegacy);
        EXPECT_EQ(legacy.blocks_read, 0u);

        opts.reader = ReaderKind::kBlock;
        for (const size_t block_bytes :
             {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{64},
              size_t{4096}, size_t{1} << 20}) {
          opts.block_bytes = block_bytes;
          const IngestReport block = MustIngest(text, opts);
          const std::string context =
              "tsv=" + std::to_string(tsv) + " crlf=" + std::to_string(crlf) +
              " final_newline=" + std::to_string(final_newline) +
              " block_bytes=" + std::to_string(block_bytes);
          ExpectSameObservables(legacy, block, context);
          EXPECT_EQ(block.reader, ReaderKind::kBlock) << context;
          EXPECT_FALSE(block.used_mmap) << context;  // istream fallback
          if (block_bytes < 64) {
            // Tiny blocks force records across boundaries: the carry
            // path must actually have run for this sweep to mean much.
            EXPECT_GT(block.carry_stitches, 0u) << context;
          }
        }
      }
    }
  }
}

TEST(IngestReaderDifferentialTest, OverflowSpanningBlocksMatchesLegacy) {
  // A 100-byte line against max_line_bytes=16 and block_bytes=32: the
  // overflow is detected mid-carry and the tail still has to be drained
  // with exact byte accounting.
  std::string text = "ASK { ?s ?p ?o }\n";
  text += std::string(100, 'x') + "\n";
  text += "ASK { ?s ?p ?o }\n";

  IngestOptions opts;
  opts.engine.threads = 1;
  opts.max_line_bytes = 16;
  opts.reader = ReaderKind::kLegacy;
  const IngestReport legacy = MustIngest(text, opts);
  EXPECT_EQ(ErrorCount(legacy.study, ErrorClass::kResourceExhausted), 1u);

  opts.reader = ReaderKind::kBlock;
  for (const size_t block_bytes : {size_t{1}, size_t{16}, size_t{32}}) {
    opts.block_bytes = block_bytes;
    const IngestReport block = MustIngest(text, opts);
    ExpectSameObservables(legacy, block,
                          "block_bytes=" + std::to_string(block_bytes));
  }
}

TEST(IngestReaderDifferentialTest, Utf8AndCrSplitAcrossBlockEdges) {
  // Multibyte UTF-8 ("Ü" = 0xC3 0x9C) inside a literal and a CRLF pair:
  // 1..8-byte blocks place a boundary inside both. The query must stay
  // valid and '\r' stripping must not eat real bytes.
  const std::string query = "SELECT ?x WHERE { ?x a \"\xc3\x9c\" }";
  const std::string text = query + "\r\n" + query + "\r\n";

  IngestOptions opts;
  opts.engine.threads = 1;
  opts.reader = ReaderKind::kLegacy;
  const IngestReport legacy = MustIngest(text, opts);
  EXPECT_EQ(legacy.study.valid, 2u);
  EXPECT_EQ(legacy.study.unique, 1u);

  opts.reader = ReaderKind::kBlock;
  for (size_t block_bytes = 1; block_bytes <= 8; ++block_bytes) {
    opts.block_bytes = block_bytes;
    const IngestReport block = MustIngest(text, opts);
    ExpectSameObservables(legacy, block,
                          "block_bytes=" + std::to_string(block_bytes));
  }
}

TEST(IngestReaderDifferentialTest, EmbeddedNulsPassThroughIdentically) {
  std::string text = "ASK { ?s ?p ?o }\n";
  text += std::string("bad\0query", 9) + "\n";
  text += std::string("\0", 1) + "\n";

  for (const size_t block_bytes : {size_t{1}, size_t{4096}}) {
    IngestOptions opts;
    opts.engine.threads = 1;
    opts.reader = ReaderKind::kLegacy;
    const IngestReport legacy = MustIngest(text, opts);
    opts.reader = ReaderKind::kBlock;
    opts.block_bytes = block_bytes;
    const IngestReport block = MustIngest(text, opts);
    ExpectSameObservables(legacy, block,
                          "block_bytes=" + std::to_string(block_bytes));
    // NUL-bearing lines are real records, not terminators.
    EXPECT_EQ(block.lines_read, 3u);
  }
}

TEST(IngestReaderDifferentialTest, EmptyAndNewlinelessInputs) {
  for (const std::string& text :
       {std::string{}, std::string{"ASK { ?s ?p ?o }"},  // no final '\n'
        std::string{"\n"}, std::string{"\r\n"}}) {
    IngestOptions opts;
    opts.engine.threads = 1;
    opts.reader = ReaderKind::kLegacy;
    const IngestReport legacy = MustIngest(text, opts);
    opts.reader = ReaderKind::kBlock;
    opts.block_bytes = 4;
    const IngestReport block = MustIngest(text, opts);
    ExpectSameObservables(legacy, block, "text=" + text);
  }
}

TEST(IngestReaderDifferentialTest, FileIngestUsesMmapAndMatchesLegacy) {
  loggen::SourceProfile profile = loggen::ExampleProfile(120);
  auto log = loggen::GenerateLog(profile, 23);
  loggen::CorruptionOptions copts;
  copts.rate = 0.25;
  loggen::CorruptLog(&log, 37, copts);

  const std::string path =
      ::testing::TempDir() + "/rwdt_ingest_differential.log";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    loggen::WriteLogText(log, out);
  }

  IngestOptions opts;
  opts.engine.threads = 1;
  opts.reader = ReaderKind::kLegacy;
  auto legacy = IngestFile(path, opts);
  ASSERT_TRUE(legacy.ok()) << legacy.error_message();

  opts.reader = ReaderKind::kBlock;
  auto block = IngestFile(path, opts);
  ASSERT_TRUE(block.ok()) << block.error_message();
  std::remove(path.c_str());

  ExpectSameObservables(legacy.value(), block.value(), "file ingest");
  // Regular file => the mapped zero-copy path, in one 1 MiB block.
  EXPECT_TRUE(block.value().used_mmap);
  EXPECT_EQ(block.value().blocks_read, 1u);
  EXPECT_EQ(block.value().carry_stitches, 0u);
  EXPECT_FALSE(legacy.value().used_mmap);
}

TEST(IngestTest, BlockReaderCountersReachMetricRegistry) {
  // The PR 5 registry carries the block pipeline's provenance series:
  // blocks by acquisition mode, carry stitches, and runs by reader.
  std::stringstream in;
  in << "ASK { ?s ?p ?o }\nASK { ?s ?p ?o }\n";
  IngestOptions opts;
  opts.engine.threads = 1;
  opts.block_bytes = 4;  // forces carry stitches
  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().carry_stitches, 0u);

  const std::string om = obs::MetricRegistry::Global().RenderOpenMetrics();
  EXPECT_NE(om.find("rwdt_ingest_blocks_total{io=\"read\"}"),
            std::string::npos)
      << om;
  EXPECT_NE(om.find("rwdt_ingest_carry_stitches_total"), std::string::npos);
  EXPECT_NE(om.find("rwdt_ingest_runs_total{reader=\"block\"}"),
            std::string::npos);
}

TEST(IngestTest, ReportJsonCarriesReaderProvenance) {
  std::stringstream in;
  in << "ASK { ?s ?p ?o }\n";
  IngestOptions opts;
  opts.engine.threads = 1;
  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  const std::string json = r.value().ToJson();
  EXPECT_NE(json.find("\"reader\":\"block\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"used_mmap\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"blocks_read\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"carry_stitches\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace rwdt::ingest
