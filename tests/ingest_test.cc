#include "ingest/ingest.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "loggen/corruptor.h"
#include "loggen/log_text.h"
#include "loggen/sparql_gen.h"
#include "sparql/parser.h"

namespace rwdt::ingest {
namespace {

uint64_t ErrorCount(const core::SourceStudy& study, ErrorClass c) {
  return study.errors[static_cast<size_t>(c)];
}

uint64_t TotalErrors(const core::SourceStudy& study) {
  uint64_t n = 0;
  for (const uint64_t e : study.errors) n += e;
  return n;
}

// Golden mapping: each kind of broken line lands in exactly the taxonomy
// class the design doc promises.
TEST(IngestTest, ClassifiesBrokenLinesIntoTaxonomy) {
  std::stringstream in;
  in << "SELECT ?x WHERE { ?x a ?y }\n"            // valid
     << "SELECT ?x WHERE { ?x \"unterminated }\n"  // lex: bad literal
     << "SELECT ?x WHERE {\n"                      // parse: open group
     << "SELECT ?x WHERE { [ a ?y ] }\n"           // unsupported: bnode list
     << "SELECT ?x WHERE { ?x a \xff\xfe }\n"      // encoding: bad UTF-8
     << "SELECT ?x WHERE { ?x a ?y }\n";           // duplicate of line 1

  auto r = IngestStream(in);
  ASSERT_TRUE(r.ok()) << r.error_message();
  const IngestReport& report = r.value();

  EXPECT_EQ(report.lines_read, 6u);
  EXPECT_EQ(report.study.total, 6u);
  EXPECT_EQ(report.study.valid, 2u);
  EXPECT_EQ(report.study.unique, 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kLexError), 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kParseError), 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kUnsupportedFeature), 1u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kEncodingError), 1u);
  EXPECT_EQ(report.study.total, report.study.valid + TotalErrors(report.study));
}

TEST(IngestTest, OversizeLineRejectedAsResourceExhausted) {
  IngestOptions opts;
  opts.max_line_bytes = 32;
  std::stringstream in;
  in << "SELECT ?x WHERE { ?x a ?y }\n"
     << std::string(1000, 'x') << "\n"
     << "SELECT ?x WHERE { ?x a ?y }\n";

  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().study.total, 3u);
  EXPECT_EQ(r.value().study.valid, 2u);
  EXPECT_EQ(ErrorCount(r.value().study, ErrorClass::kResourceExhausted), 1u);
  // The whole stream was consumed even though the long line wasn't kept.
  EXPECT_EQ(r.value().bytes_read, 28u + 1001u + 28u);
}

TEST(IngestTest, ParserStepBudgetRejectsAsResourceExhausted) {
  IngestOptions opts;
  opts.engine.parse_limits.max_parser_steps = 4;
  std::stringstream in;
  in << "ASK { ?x a ?y }\n"  // fits in four steps? no — also rejected
     << "SELECT ?a ?b ?c WHERE { ?a ?b ?c . ?c ?b ?a . ?b ?a ?c }\n";

  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().study.total, 2u);
  // Everything over budget lands in resource_exhausted, nothing aborts.
  EXPECT_EQ(r.value().study.valid +
                ErrorCount(r.value().study, ErrorClass::kResourceExhausted),
            2u);
  EXPECT_GE(ErrorCount(r.value().study, ErrorClass::kResourceExhausted), 1u);
}

TEST(IngestTest, TsvFormatSplitsSourceColumn) {
  IngestOptions opts;
  opts.format = LogFormat::kTsv;
  std::stringstream in;
  in << "alpha\tSELECT ?x WHERE { ?x a ?y }\n"
     << "alpha\tSELECT ?y WHERE { ?y a ?x }\n"
     << "beta\tASK { ?s ?p ?o }\n"
     << "no tab on this line\n";

  auto r = IngestStream(in, opts);
  ASSERT_TRUE(r.ok());
  const IngestReport& report = r.value();
  EXPECT_EQ(report.study.total, 4u);
  EXPECT_EQ(report.study.valid, 3u);
  EXPECT_EQ(ErrorCount(report.study, ErrorClass::kParseError), 1u);
  ASSERT_EQ(report.per_source.size(), 2u);
  EXPECT_EQ(report.per_source.at("alpha"), 2u);
  EXPECT_EQ(report.per_source.at("beta"), 1u);
}

TEST(IngestTest, BlankLinesSkippedWithoutCounting) {
  std::stringstream in;
  in << "\n"
     << "   \t \n"
     << "ASK { ?s ?p ?o }\n"
     << "\n";
  auto r = IngestStream(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lines_read, 4u);
  EXPECT_EQ(r.value().blank_lines, 3u);
  EXPECT_EQ(r.value().study.total, 1u);
  EXPECT_EQ(r.value().study.valid, 1u);
}

TEST(IngestTest, MetricsJsonCarriesErrorCounts) {
  std::stringstream in;
  in << "ASK { ?s ?p ?o }\n"
     << "\xff not utf8\n";
  auto r = IngestStream(in);
  ASSERT_TRUE(r.ok());
  const std::string json = r.value().metrics.ToJson();
  EXPECT_NE(json.find("\"errors\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"encoding_error\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"entries_valid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"entries_rejected\":1"), std::string::npos) << json;
}

TEST(IngestTest, RejectsNonsensicalOptions) {
  IngestOptions zero_chunk;
  zero_chunk.chunk_entries = 0;
  EXPECT_FALSE(zero_chunk.Validate().ok());

  IngestOptions zero_line;
  zero_line.max_line_bytes = 0;
  EXPECT_FALSE(zero_line.Validate().ok());

  IngestOptions bad_engine;
  bad_engine.engine.parse_limits.max_parser_steps = 0;
  EXPECT_FALSE(bad_engine.Validate().ok());

  std::stringstream in;
  in << "ASK { ?s ?p ?o }\n";
  EXPECT_FALSE(IngestStream(in, zero_chunk).ok());
}

TEST(IngestTest, MissingFileIsNotFound) {
  auto r = IngestFile("/nonexistent/query.log");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST(CorruptorTest, DeterministicInSeed) {
  loggen::SourceProfile profile = loggen::ExampleProfile(200);
  const auto pristine = loggen::GenerateLog(profile, 5);

  auto a = pristine, b = pristine, c = pristine;
  const auto sa = loggen::CorruptLog(&a, 17);
  const auto sb = loggen::CorruptLog(&b, 17);
  const auto sc = loggen::CorruptLog(&c, 18);
  EXPECT_EQ(sa.corrupted_indices, sb.corrupted_indices);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
  // A different seed picks a different victim set (overwhelmingly likely
  // for 200 entries at the default 20% rate).
  EXPECT_NE(sa.corrupted_indices, sc.corrupted_indices);
}

TEST(CorruptorTest, EnsureInvalidMeansCorruptedNeverParses) {
  loggen::SourceProfile profile = loggen::ExampleProfile(200);
  auto log = loggen::GenerateLog(profile, 5);
  loggen::CorruptionOptions opts;
  opts.rate = 1.0;
  const auto summary = loggen::CorruptLog(&log, 23, opts);
  EXPECT_EQ(summary.corrupted, log.size());
  Interner dict;
  for (const auto& entry : log) {
    EXPECT_FALSE(sparql::ParseSparql(entry.text, &dict).ok())
        << "still parses: " << entry.text;
  }
}

// The tentpole property: corruption at ANY rate never changes what the
// engine reports for the surviving queries. The Valid-subset aggregates
// of a corrupted ingest run are bit-identical to analyzing only the
// uncorrupted entries directly — for every thread count and chunk size.
TEST(IngestTest, CorruptionNeverPerturbsValidSubsetAggregates) {
  loggen::SourceProfile profile = loggen::ExampleProfile(300);
  const auto pristine = loggen::GenerateLog(profile, 11);

  for (const double rate : {0.0, 0.2, 0.5, 1.0}) {
    auto corrupted = pristine;
    loggen::CorruptionOptions copts;
    copts.rate = rate;
    const auto summary = loggen::CorruptLog(&corrupted, 29, copts);

    // Reference: the surviving (untouched) entries through the engine.
    std::vector<loggen::LogEntry> surviving;
    size_t next_corrupt = 0;
    for (size_t i = 0; i < pristine.size(); ++i) {
      if (next_corrupt < summary.corrupted_indices.size() &&
          summary.corrupted_indices[next_corrupt] == i) {
        ++next_corrupt;
        continue;
      }
      surviving.push_back(pristine[i]);
    }
    engine::Engine reference{engine::EngineOptions{}};
    const core::SourceStudy expected =
        reference.AnalyzeEntries("ref", false, surviving);

    const std::string text = [&corrupted] {
      std::stringstream out;
      loggen::WriteLogText(corrupted, out);
      return out.str();
    }();

    core::SourceStudy first;
    bool have_first = false;
    for (const unsigned threads : {1u, 2u, 8u}) {
      for (const size_t chunk : {size_t{1}, size_t{64}, size_t{4096}}) {
        IngestOptions opts;
        opts.source_name = "ref";
        opts.engine.threads = threads;
        opts.chunk_entries = chunk;
        std::stringstream in(text);
        auto r = IngestStream(in, opts);
        ASSERT_TRUE(r.ok()) << r.error_message();
        const core::SourceStudy& got = r.value().study;

        EXPECT_EQ(got.total, pristine.size());
        EXPECT_EQ(got.valid, expected.valid) << "rate " << rate;
        EXPECT_EQ(got.unique, expected.unique) << "rate " << rate;
        EXPECT_TRUE(got.valid_agg == expected.valid_agg) << "rate " << rate;
        EXPECT_TRUE(got.unique_agg == expected.unique_agg)
            << "rate " << rate;
        if (!have_first) {
          first = got;
          have_first = true;
        } else {
          // Full study (including per-class error counts) is identical
          // across every thread count and chunk size.
          EXPECT_TRUE(got == first)
              << "rate " << rate << " threads " << threads << " chunk "
              << chunk;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rwdt::ingest
