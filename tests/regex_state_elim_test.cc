#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rng.h"
#include "regex/automaton.h"
#include "regex/glushkov.h"
#include "regex/parser.h"
#include "regex/sampler.h"
#include "regex/state_elimination.h"

namespace rwdt::regex {
namespace {

TEST(StateEliminationTest, RoundTripsFixedExpressions) {
  Interner dict;
  for (const std::string s :
       {"a", "ab", "a|b", "a*", "(ab|c)*a?", "b*a(b*a)*", "(a|b)*a(a|b)",
        "<eps>", "a+b+c+"}) {
    auto e = ParseRegex(s, &dict);
    ASSERT_TRUE(e.ok()) << s;
    const Dfa dfa = ToMinimalDfa(e.value());
    const RegexPtr back = DfaToRegex(dfa);
    EXPECT_TRUE(AreEquivalent(dfa, ToDfa(back)))
        << s << " -> " << back->ToString(dict);
  }
}

TEST(StateEliminationTest, EmptyLanguage) {
  Interner dict;
  auto e = ParseRegex("a<empty>", &dict);
  ASSERT_TRUE(e.ok());
  const RegexPtr back = DfaToRegex(ToMinimalDfa(e.value()));
  EXPECT_TRUE(IsEmptyLanguage(ToDfa(back)));
}

class StateElimPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StateElimPropertyTest, RandomRoundTrips) {
  Rng rng(GetParam());
  RegexSamplerOptions opt;
  opt.max_depth = 3;
  for (int round = 0; round < 15; ++round) {
    const RegexPtr e = SampleRegex(opt, rng);
    const Dfa dfa = ToMinimalDfa(e);
    const RegexPtr back = DfaToRegex(dfa);
    EXPECT_TRUE(AreEquivalent(dfa, ToDfa(back)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateElimPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace rwdt::regex
