#include <gtest/gtest.h>

#include "common/interner.h"
#include "tree/xml.h"
#include "xpath/xpath.h"

namespace rwdt::xpath {
namespace {

class XPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = tree::ParseXml(
        "<library><shelf id='1'>"
        "<book><title/><author/></book>"
        "<book><title/></book>"
        "</shelf><shelf id='2'><box><book><title/></book></box></shelf>"
        "</library>",
        &dict_);
    ASSERT_TRUE(r.ok()) << r.error_message();
    tree_ = r.value().tree;
    for (const auto& a : r.value().attributes) {
      attrs_.emplace_back(a.node, a.name);
    }
  }

  Query Q(const std::string& s) {
    auto r = ParseXPath(s, &dict_);
    EXPECT_TRUE(r.ok()) << s << ": " << r.status().ToString();
    return r.value();
  }

  std::vector<tree::NodeId> Eval(const std::string& s) {
    return Evaluate(Q(s), tree_, dict_, attrs_);
  }

  std::vector<std::string> Labels(const std::vector<tree::NodeId>& nodes) {
    std::vector<std::string> out;
    for (auto n : nodes) out.push_back(dict_.Name(tree_.node(n).label));
    return out;
  }

  Interner dict_;
  tree::Tree tree_;
  std::vector<std::pair<tree::NodeId, std::string>> attrs_;
};

TEST_F(XPathTest, ChildAndDescendantSteps) {
  EXPECT_EQ(Eval("/library").size(), 1u);
  EXPECT_EQ(Eval("/library/shelf").size(), 2u);
  EXPECT_EQ(Eval("/library/shelf/book").size(), 2u);  // not the boxed one
  EXPECT_EQ(Eval("//book").size(), 3u);
  EXPECT_EQ(Eval("//book/title").size(), 3u);
  EXPECT_EQ(Eval("/book").size(), 0u);
}

TEST_F(XPathTest, Wildcards) {
  EXPECT_EQ(Eval("/library/*").size(), 2u);
  EXPECT_EQ(Eval("//shelf/*").size(), 3u);  // 2 books + 1 box
}

TEST_F(XPathTest, Predicates) {
  EXPECT_EQ(Eval("//book[author]").size(), 1u);
  EXPECT_EQ(Eval("//book[not(author)]").size(), 2u);
  EXPECT_EQ(Eval("//book[title and author]").size(), 1u);
  EXPECT_EQ(Eval("//book[title or author]").size(), 3u);
  EXPECT_EQ(Eval("//shelf[box]").size(), 1u);
  EXPECT_EQ(Eval("//shelf[.//title]").size(), 2u);
}

TEST_F(XPathTest, UpwardAxes) {
  EXPECT_EQ(Labels(Eval("//author/..")), std::vector<std::string>{"book"});
  EXPECT_EQ(Eval("//title/ancestor::shelf").size(), 2u);
  EXPECT_EQ(Eval("//box/parent::shelf").size(), 1u);
  EXPECT_EQ(Eval("//author/ancestor-or-self::author").size(), 1u);
}

TEST_F(XPathTest, SiblingAxes) {
  // First shelf's first book has a following sibling book.
  EXPECT_EQ(Eval("//book/following-sibling::book").size(), 1u);
  EXPECT_EQ(Eval("//book/preceding-sibling::book").size(), 1u);
  EXPECT_EQ(Eval("//title/following-sibling::author").size(), 1u);
}

TEST_F(XPathTest, FollowingPrecedingAxes) {
  // 'author' in the first book precedes the later books.
  EXPECT_GE(Eval("//author/following::book").size(), 1u);
  EXPECT_GE(Eval("//box/preceding::book").size(), 2u);
}

TEST_F(XPathTest, AttributeSteps) {
  EXPECT_EQ(Eval("//shelf[@id]").size(), 2u);
  EXPECT_EQ(Eval("//shelf/@id").size(), 2u);
  EXPECT_EQ(Eval("//book[@id]").size(), 0u);
  EXPECT_EQ(Eval("//shelf[@missing]").size(), 0u);
}

TEST_F(XPathTest, Union) {
  EXPECT_EQ(Eval("//author|//box").size(), 2u);
}

TEST_F(XPathTest, ExplicitAxisSyntax) {
  EXPECT_EQ(Eval("/library/child::shelf").size(), 2u);
  EXPECT_EQ(Eval("//title/self::title").size(), 3u);
  EXPECT_EQ(Eval("/descendant::book").size(), 3u);
}

TEST_F(XPathTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseXPath("//", &dict_).ok());
  EXPECT_FALSE(ParseXPath("//a[", &dict_).ok());
  EXPECT_FALSE(ParseXPath("//a[b", &dict_).ok());
  EXPECT_FALSE(ParseXPath("//unknown::a", &dict_).ok());
  EXPECT_FALSE(ParseXPath("", &dict_).ok());
}

TEST_F(XPathTest, SizeMetric) {
  EXPECT_EQ(Q("/a/b").Size(), 2u);
  EXPECT_EQ(Q("//a[b and c]/d").Size(), 2u + 1 + 2 * 2);
}

TEST_F(XPathTest, AxesUsed) {
  auto axes = Q("//a/../@id").AxesUsed();
  EXPECT_TRUE(axes.count(Axis::kDescendant));
  EXPECT_TRUE(axes.count(Axis::kParent));
  EXPECT_TRUE(axes.count(Axis::kAttribute));
}

TEST_F(XPathTest, FragmentClassifiers) {
  // Positive XPath: no negation.
  EXPECT_TRUE(IsPositiveXPath(Q("//a[b or c]/d")));
  EXPECT_FALSE(IsPositiveXPath(Q("//a[not(b)]")));

  // Core XPath 1.0: navigational, no attribute access.
  EXPECT_TRUE(IsCoreXPath1(Q("//a/ancestor::b[not(c)]")));
  EXPECT_FALSE(IsCoreXPath1(Q("//a[@id]")));

  // Downward XPath.
  EXPECT_TRUE(IsDownwardXPath(Q("/a//b[c]/d")));
  EXPECT_FALSE(IsDownwardXPath(Q("//a/..")));
  EXPECT_FALSE(IsDownwardXPath(Q("//a/following-sibling::b")));

  // Tree patterns: downward, conjunctive, single branch.
  EXPECT_TRUE(IsTreePattern(Q("/a//b[c and .//d]/e")));
  EXPECT_FALSE(IsTreePattern(Q("//a[b or c]")));
  EXPECT_FALSE(IsTreePattern(Q("//a[not(b)]")));
  EXPECT_FALSE(IsTreePattern(Q("//a|//b")));
  EXPECT_FALSE(IsTreePattern(Q("//a/..")));
}

TEST_F(XPathTest, EveryTreePatternIsPositiveAndDownward) {
  for (const std::string s :
       {"/a/b", "//a//b[c]", "//a[b and c[d]]", "//a/*[b]"}) {
    Query q = Q(s);
    if (IsTreePattern(q)) {
      EXPECT_TRUE(IsPositiveXPath(q)) << s;
      EXPECT_TRUE(IsDownwardXPath(q)) << s;
    }
  }
}

}  // namespace
}  // namespace rwdt::xpath
