#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/flat_interner.h"
#include "common/hash.h"
#include "common/interner.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/swar.h"
#include "common/table.h"

namespace rwdt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ConvertsToBoolAndExposesMessage) {
  Result<int> good = 1;
  Result<int> bad = Status::ParseError("bad token");
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_FALSE(static_cast<bool>(bad));
  EXPECT_EQ(good.error_message(), "");
  EXPECT_EQ(bad.error_message(), "bad token");
}

TEST(StatusMacroTest, ReturnIfErrorForwardsBothShapes) {
  auto from_status = [](Status s) -> Status {
    RWDT_RETURN_IF_ERROR(s);
    return Status::Ok();
  };
  auto from_result = [](Result<int> r) -> Status {
    RWDT_RETURN_IF_ERROR(r);
    return Status::Ok();
  };
  EXPECT_TRUE(from_status(Status::Ok()).ok());
  EXPECT_EQ(from_status(Status::LexError("x")).code(), Code::kLexError);
  EXPECT_TRUE(from_result(3).ok());
  EXPECT_EQ(from_result(Status::NotFound("x")).code(), Code::kNotFound);
}

TEST(StatusMacroTest, AssignOrReturnDeclaresAndAssigns) {
  auto chain = [](Result<int> a, Result<int> b) -> Result<int> {
    RWDT_ASSIGN_OR_RETURN(const int x, std::move(a));
    std::vector<int> ys(1);
    RWDT_ASSIGN_OR_RETURN(ys[0], std::move(b));  // lvalue, not a decl
    return x + ys[0];
  };
  Result<int> ok = chain(2, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> err = chain(2, Status::ResourceExhausted("budget"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Code::kResourceExhausted);
}

TEST(ErrorClassTest, ClassifiesEveryCode) {
  EXPECT_EQ(ClassifyStatus(Status::LexError("x")), ErrorClass::kLexError);
  EXPECT_EQ(ClassifyStatus(Status::ParseError("x")),
            ErrorClass::kParseError);
  EXPECT_EQ(ClassifyStatus(Status::Unsupported("x")),
            ErrorClass::kUnsupportedFeature);
  EXPECT_EQ(ClassifyStatus(Status::ResourceExhausted("x")),
            ErrorClass::kResourceExhausted);
  EXPECT_EQ(ClassifyStatus(Status::EncodingError("x")),
            ErrorClass::kEncodingError);
  // Non-parse codes fold into the parse-error bucket.
  EXPECT_EQ(ClassifyStatus(Status::Internal("x")), ErrorClass::kParseError);
}

TEST(ErrorClassTest, NamesAreStableSnakeCase) {
  EXPECT_STREQ(ErrorClassName(ErrorClass::kLexError), "lex_error");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kParseError), "parse_error");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kUnsupportedFeature),
               "unsupported_feature");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(ErrorClassName(ErrorClass::kEncodingError),
               "encoding_error");
}

TEST(InternerTest, AssignsDenseIdsInOrder) {
  Interner dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(1), "b");
  EXPECT_EQ(dict.Lookup("b"), 1u);
  EXPECT_EQ(dict.Lookup("zzz"), kInvalidSymbol);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, NextWeightedRespectsZeros) {
  Rng rng(11);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1u);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(5);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(ZipfTest, SkewsTowardSmallIndices) {
  Rng rng(3);
  ZipfSampler zipf(100, 1.5);
  size_t first_bucket = 0;
  const size_t trials = 10000;
  for (size_t i = 0; i < trials; ++i) {
    if (zipf.Sample(rng) == 0) ++first_bucket;
  }
  // Index 0 has probability ~ 1/zeta(1.5, 100) ~= 0.4.
  EXPECT_GT(first_bucket, trials / 4);
}

TEST(StatsTest, SummaryBasics) {
  Summary s = Summarize({5, 1, 3});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 5u);
  EXPECT_EQ(s.median, 3u);
}

TEST(StatsTest, SummaryEmpty) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(StatsTest, PowerLawAlphaRecoversExponent) {
  // Sample from a discrete power law with alpha=2.5 via inverse CDF on a
  // Zipf sampler and check the MLE lands near 2.5.
  Rng rng(42);
  ZipfSampler zipf(100000, 2.5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<uint64_t>(zipf.Sample(rng)) + 1);
  }
  const double alpha = PowerLawAlpha(values, 2);
  EXPECT_GT(alpha, 2.0);
  EXPECT_LT(alpha, 3.0);
}

TEST(StatsTest, ClampedHistogram) {
  auto h = ClampedHistogram({0, 1, 1, 5, 99}, 3);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 2u);  // 5 and 99 clamp into "3+"
}

TEST(TableTest, FormatsThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(28651075), "28,651,075");
}

TEST(TableTest, FormatsPercent) {
  EXPECT_EQ(Percent(1, 4), "25.00%");
  EXPECT_EQ(Percent(0, 4), "0.00%");
  EXPECT_EQ(Percent(0, 4, /*blank_zero=*/true), "");
  EXPECT_EQ(Percent(1, 0), "0.00%");
}

TEST(TableTest, RendersAlignedTable) {
  AsciiTable t({"Name", "Count"});
  t.AddRow({"alpha", "12"});
  t.AddSeparator();
  t.AddRow({"b", "1,234"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| Name  | Count |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |    12 |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 1,234 |"), std::string::npos);
}

TEST(Hash64Test, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Hash64("SELECT * WHERE { ?s ?p ?o }"),
            Hash64("SELECT * WHERE { ?s ?p ?o }"));
  EXPECT_NE(Hash64("SELECT"), Hash64("SELECT "));
  EXPECT_NE(Hash64("abc", 1), Hash64("abc", 2));
  // Empty and one-past-boundary lengths go through the tail path.
  const std::string eight(8, 'x');
  EXPECT_NE(Hash64(""), Hash64("x"));
  EXPECT_NE(Hash64(eight), Hash64(eight + "x"));
}

TEST(Hash64Test, NoTrivialCollisionsOnGeneratedKeys) {
  // Sanity, not a cryptographic claim: 64-bit hashes of 100k distinct
  // short keys should not collide (a birthday collision at this size
  // has probability ~3e-10; any collision indicates a broken mixer).
  std::set<uint64_t> seen;
  for (int i = 0; i < 100000; ++i) {
    seen.insert(Hash64("key:" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(ArenaTest, CopyRoundTripsAndClearReuses) {
  Arena arena(/*block_bytes=*/64);
  const std::string_view a = arena.Copy("hello");
  const std::string_view b = arena.Copy(std::string(100, 'z'));  // oversized
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, std::string(100, 'z'));
  EXPECT_EQ(arena.Copy(""), "");
  const size_t reserved = arena.bytes_reserved();
  arena.Clear();
  // Refilling after Clear reuses the retained blocks: no new reservation.
  arena.Copy("hello again");
  arena.Copy(std::string(100, 'z'));
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(FlatInternerTest, AssignsDenseIdsInOrder) {
  FlatInterner in;
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.Intern("b"), 1u);
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.Name(0), "a");
  EXPECT_EQ(in.Name(1), "b");
  EXPECT_EQ(in.Lookup("b"), 1u);
  EXPECT_EQ(in.Lookup("c"), kInvalidSymbol);
}

TEST(FlatInternerTest, EdgeCaseKeys) {
  FlatInterner in;
  const std::string long_key(100000, 'q');
  EXPECT_EQ(in.Intern(""), 0u);  // empty string is a valid symbol
  EXPECT_EQ(in.Intern(long_key), 1u);
  EXPECT_EQ(in.Intern(""), 0u);
  EXPECT_EQ(in.Name(1), long_key);
  in.Clear();
  EXPECT_EQ(in.size(), 0u);
  EXPECT_EQ(in.Lookup(""), kInvalidSymbol);
  EXPECT_EQ(in.Intern(long_key), 0u);  // ids restart after Clear
}

/// The engine's correctness hinges on FlatInterner honoring the exact
/// SymbolId contract of Interner: dense ids in first-seen order. Drive
/// both with random string multisets (duplicates, empty strings, long
/// strings, keys straddling the 8-byte hash word boundary) and demand
/// identical ids — including across Clear() cycles, where the flat
/// table keeps its grown capacity (resize-across-clear).
TEST(FlatInternerTest, PropertyMatchesInternerOnRandomMultisets) {
  Rng rng(2022);
  FlatInterner flat;  // reused across rounds via Clear()
  for (int round = 0; round < 8; ++round) {
    Interner reference;
    flat.Clear();
    const int n = 200 + static_cast<int>(rng.NextBelow(800));
    for (int i = 0; i < n; ++i) {
      std::string key;
      const uint64_t kind = rng.NextBelow(10);
      if (kind == 0) {
        key = "";  // empty-string edge case
      } else if (kind == 1) {
        key = std::string(1 + rng.NextBelow(200),
                          static_cast<char>('a' + rng.NextBelow(26)));
      } else {
        // Small key space => plenty of duplicates per round.
        key = "sym:" + std::to_string(rng.NextBelow(64));
      }
      const SymbolId want = reference.Intern(key);
      const SymbolId got = flat.InternWithHash(Hash64(key), key);
      ASSERT_EQ(got, want) << "round " << round << " key " << key;
      ASSERT_EQ(flat.Lookup(key), want);
    }
    ASSERT_EQ(flat.size(), reference.size());
    for (SymbolId id = 0; id < flat.size(); ++id) {
      ASSERT_EQ(flat.Name(id), reference.Name(id));
    }
  }
}

size_t NaiveFindByte(const char* p, size_t n, char b) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] == b) return i;
  }
  return n;
}

size_t NaiveAsciiPrefix(const char* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<unsigned char>(p[i]) >= 0x80) return i;
  }
  return n;
}

TEST(SwarTest, ZeroByteMaskIsExact) {
  // The classic (w - 0x01..) & ~w & 0x80.. needs the ~w term to be
  // exact; sweep every byte value in every lane against the definition.
  for (int v = 0; v < 256; ++v) {
    for (int lane = 0; lane < 8; ++lane) {
      uint64_t w = swar::kLowBits * 0x41;  // all 'A'
      w = (w & ~(uint64_t{0xff} << (8 * lane))) |
          (static_cast<uint64_t>(v) << (8 * lane));
      const uint64_t mask = swar::ZeroByteMask(w);
      const bool lane_set = ((mask >> (8 * lane)) & 0x80) != 0;
      ASSERT_EQ(lane_set, v == 0) << "v=" << v << " lane=" << lane;
      ASSERT_EQ(mask & ~(uint64_t{0x80} << (8 * lane)), 0u);
    }
  }
}

TEST(SwarTest, FindByteMatchesNaiveAtEveryOffset) {
  // Every (haystack length, match offset) pair around the 8/16-byte
  // step boundaries, for targets that tickle the high-bit trickery:
  // '\n' (0x0A) must not be confused with 0x8A, and searching for
  // '\0' and 0xFF must work.
  for (const char target : {'\n', '\t', '\0', '\x7f', '\xff'}) {
    for (size_t n = 0; n <= 40; ++n) {
      std::string hay(n, 'A');
      // Distractors sharing low bits with the target, high bit flipped.
      for (size_t i = 0; i < n; i += 3) {
        hay[i] = static_cast<char>(static_cast<unsigned char>(target) ^ 0x80);
      }
      for (size_t at = 0; at <= n; ++at) {
        std::string h = hay;
        if (at < n) h[at] = target;
        const size_t want = NaiveFindByte(h.data(), n, target);
        ASSERT_EQ(swar::FindByte(h.data(), n, target), want)
            << "n=" << n << " at=" << at << " target=" << int{target};
        ASSERT_EQ(swar::FindByteGeneric(h.data(), n, target), want);
      }
    }
  }
}

TEST(SwarTest, FindByteStringViewReturnsNpos) {
  EXPECT_EQ(swar::FindByte(std::string_view{}, '\n'), std::string_view::npos);
  EXPECT_EQ(swar::FindByte(std::string_view{"abc"}, '\n'),
            std::string_view::npos);
  EXPECT_EQ(swar::FindByte(std::string_view{"ab\ncd"}, '\n'), 2u);
}

TEST(SwarTest, AsciiPrefixMatchesNaiveAtEveryOffset) {
  for (size_t n = 0; n <= 40; ++n) {
    for (size_t at = 0; at <= n; ++at) {
      std::string h(n, 'x');
      if (at < n) h[at] = static_cast<char>(0x80);
      const size_t want = NaiveAsciiPrefix(h.data(), n);
      ASSERT_EQ(swar::AsciiPrefix(h.data(), n), want)
          << "n=" << n << " at=" << at;
      ASSERT_EQ(swar::AsciiPrefixGeneric(h.data(), n), want);
    }
  }
}

TEST(SwarTest, RandomDifferentialAgainstNaive) {
  // Random buffers over the full byte range, unaligned starts included:
  // the active tier (SSE2/NEON/SWAR), the generic tier, and the naive
  // scan must agree byte-for-byte.
  Rng rng(0x5747u);  // "SW"
  for (int round = 0; round < 2000; ++round) {
    const size_t n = rng.NextBelow(120);
    std::string buf(n + 1, '\0');
    for (size_t i = 0; i < n; ++i) {
      // Bias toward the interesting values so matches are common.
      const uint64_t kind = rng.NextBelow(4);
      buf[i] = kind == 0 ? '\n'
               : kind == 1
                   ? static_cast<char>(0x80 + rng.NextBelow(0x80))
                   : static_cast<char>(rng.NextBelow(256));
    }
    const size_t skew = rng.NextBelow(2);  // exercise unaligned p
    const char* p = buf.data() + skew;
    const size_t len = n - std::min(n, skew);
    for (const char target : {'\n', '\t', static_cast<char>(0x80)}) {
      const size_t want = NaiveFindByte(p, len, target);
      ASSERT_EQ(swar::FindByte(p, len, target), want) << "round " << round;
      ASSERT_EQ(swar::FindByteGeneric(p, len, target), want);
    }
    ASSERT_EQ(swar::AsciiPrefix(p, len), NaiveAsciiPrefix(p, len));
    ASSERT_EQ(swar::AsciiPrefixGeneric(p, len), NaiveAsciiPrefix(p, len));
  }
}

}  // namespace
}  // namespace rwdt
