#include <gtest/gtest.h>

#include "common/interner.h"
#include "tree/json.h"
#include "tree/tree.h"
#include "tree/xml.h"

namespace rwdt::tree {
namespace {

TEST(TreeTest, BuildAndTraverse) {
  Interner dict;
  Tree t;
  const NodeId root = t.AddRoot(dict.Intern("persons"));
  const NodeId p1 = t.AddChild(root, dict.Intern("person"));
  const NodeId p2 = t.AddChild(root, dict.Intern("person"));
  t.AddChild(p1, dict.Intern("name"));
  t.AddChild(p1, dict.Intern("birthplace"));
  t.AddChild(p2, dict.Intern("name"));

  EXPECT_EQ(t.NumNodes(), 6u);
  EXPECT_EQ(t.Depth(), 3u);
  const auto labels = t.ChildLabels(root);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(dict.Name(labels[0]), "person");
  const auto order = t.PreOrder();
  EXPECT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], root);
  EXPECT_EQ(order[1], p1);  // pre-order visits p1's subtree before p2
  EXPECT_EQ(order[4], p2);
}

TEST(TreeTest, EmptyAndSingleNode) {
  Tree t;
  EXPECT_EQ(t.Depth(), 0u);
  Interner dict;
  t.AddRoot(dict.Intern("a"));
  EXPECT_EQ(t.Depth(), 1u);
}

class XmlTest : public ::testing::Test {
 protected:
  Result<XmlDocument> Parse(const std::string& s) {
    return ParseXml(s, &dict_);
  }
  /// Category of a failed parse (kNone if it succeeded).
  XmlErrorCategory Category(const std::string& s) {
    return ClassifyXmlError(Parse(s).status());
  }
  Interner dict_;
};

TEST_F(XmlTest, ParsesPaperFigure1Document) {
  const std::string doc = R"(<?xml version="1.0"?>
<persons>
  <person pers_id="1">
    <name>Aretha</name>
    <birthplace>
      <city>Memphis</city>
      <state>Tennessee</state>
      <country>US</country>
    </birthplace>
  </person>
</persons>)";
  auto r = Parse(doc);
  ASSERT_TRUE(r.ok()) << r.error_message();
  const XmlDocument& d = r.value();
  EXPECT_EQ(dict_.Name(d.tree.node(d.tree.root()).label), "persons");
  EXPECT_EQ(d.tree.Depth(), 4u);
  ASSERT_EQ(d.attributes.size(), 1u);
  EXPECT_EQ(d.attributes[0].name, "pers_id");
  EXPECT_EQ(d.attributes[0].value, "1");
}

TEST_F(XmlTest, SelfClosingAndComments) {
  auto r = Parse("<a><!-- hi --><b/><c x='1'/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tree.NumNodes(), 3u);
}

TEST_F(XmlTest, CdataAndEntities) {
  auto r = Parse("<a>x &amp; y<![CDATA[<raw>]]></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tree.node(0).text, "x & y<raw>");
}

TEST_F(XmlTest, DetectsTagMismatch) {
  auto r = Parse("<a><b></a></b>");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(ClassifyXmlError(r.status()), XmlErrorCategory::kTagMismatch);
}

TEST_F(XmlTest, DetectsPrematureEnd) {
  for (const std::string doc : {"<a><b></b>", "<a", "<a x='1", "<a>text"}) {
    EXPECT_EQ(Category(doc), XmlErrorCategory::kPrematureEnd) << doc;
  }
}

TEST_F(XmlTest, DetectsBadEncoding) {
  std::string doc = "<a>\xc3(</a>";  // invalid UTF-8 continuation
  auto r = Parse(doc);
  ASSERT_FALSE(r.ok());
  // Encoding failures carry the taxonomy code, not a generic parse error.
  EXPECT_EQ(r.status().code(), Code::kEncodingError);
  EXPECT_EQ(ClassifyXmlError(r.status()), XmlErrorCategory::kBadEncoding);
}

TEST_F(XmlTest, DetectsBadAttribute) {
  EXPECT_EQ(Category("<a x=1></a>"), XmlErrorCategory::kBadAttribute);
  EXPECT_EQ(Category("<a x='1' x='2'></a>"),
            XmlErrorCategory::kBadAttribute);
}

TEST_F(XmlTest, DetectsMultipleRootsAndStrayContent) {
  EXPECT_EQ(Category("<a></a><b></b>"), XmlErrorCategory::kMultipleRoots);
  EXPECT_EQ(Category("<a></a>junk"), XmlErrorCategory::kStrayContent);
}

TEST_F(XmlTest, DetectsBadEntityAndComment) {
  EXPECT_EQ(Category("<a>&unknown;</a>"), XmlErrorCategory::kBadEntity);
  EXPECT_EQ(Category("<a>x & y</a>"), XmlErrorCategory::kBadEntity);
  EXPECT_EQ(Category("<a><!-- x -- y --></a>"),
            XmlErrorCategory::kBadComment);
}

TEST_F(XmlTest, DetectsEmptyDocument) {
  EXPECT_EQ(Category("   "), XmlErrorCategory::kEmptyDocument);
}

TEST_F(XmlTest, ErrorMessagesCarryCategoryAndOffset) {
  auto r = Parse("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("tag-mismatch:"), std::string::npos);
  EXPECT_NE(r.error_message().find("at offset"), std::string::npos);
}

TEST_F(XmlTest, RoundTripsThroughToXml) {
  auto r = Parse("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(r.ok());
  const std::string rendered = ToXml(r.value().tree, dict_);
  auto r2 = Parse(rendered);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().tree.NumNodes(), r.value().tree.NumNodes());
  EXPECT_EQ(r2.value().tree.Depth(), r.value().tree.Depth());
}

TEST(Utf8Test, Validation) {
  EXPECT_TRUE(IsValidUtf8("hello"));
  EXPECT_TRUE(IsValidUtf8("h\xc3\xa9llo"));          // é
  EXPECT_TRUE(IsValidUtf8("\xe2\x82\xac"));          // €
  EXPECT_TRUE(IsValidUtf8("\xf0\x9f\x98\x80"));      // emoji
  EXPECT_FALSE(IsValidUtf8("\xc3("));                // bad continuation
  EXPECT_FALSE(IsValidUtf8("\xff"));                 // invalid byte
  EXPECT_FALSE(IsValidUtf8("\xe2\x82"));             // truncated
  EXPECT_FALSE(IsValidUtf8("\xc0\xaf"));             // overlong
}

class JsonTest : public ::testing::Test {
 protected:
  JsonPtr Parse(const std::string& s) {
    auto r = ParseJson(s, &dict_);
    EXPECT_TRUE(r.ok()) << s << ": " << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }
  Interner dict_;
};

TEST_F(JsonTest, ParsesScalars) {
  EXPECT_EQ(Parse("null")->kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(Parse("true")->bool_value());
  EXPECT_DOUBLE_EQ(Parse("-2.5e2")->number_value(), -250.0);
  EXPECT_EQ(Parse("\"a\\nb\"")->string_value(), "a\nb");
  EXPECT_EQ(Parse("\"\\u00e9\"")->string_value(), "\xc3\xa9");
}

TEST_F(JsonTest, ParsesPaperFigure1Document) {
  const std::string doc = R"({"persons": [
    {"pers_id": 1, "name": "Aretha",
     "birthplace": {"city": "Memphis", "state": "Tennessee",
                    "country": "US"}}]})";
  auto v = Parse(doc);
  ASSERT_NE(v, nullptr);
  auto persons = v->Get("persons");
  ASSERT_NE(persons, nullptr);
  ASSERT_EQ(persons->items().size(), 1u);
  EXPECT_EQ(persons->items()[0]->Get("name")->string_value(), "Aretha");
}

TEST_F(JsonTest, RejectsGarbage) {
  EXPECT_FALSE(ParseJson("{", &dict_).ok());
  EXPECT_FALSE(ParseJson("[1,]", &dict_).ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}", &dict_).ok());
  EXPECT_FALSE(ParseJson("tru", &dict_).ok());
  EXPECT_FALSE(ParseJson("1 2", &dict_).ok());
}

TEST_F(JsonTest, RoundTripsToString) {
  const std::string doc = R"({"a":[1,2,{"b":true}],"c":"x"})";
  auto v = Parse(doc);
  EXPECT_EQ(v->ToString(), doc);
}

TEST_F(JsonTest, JsonToTreeMapsKeysToLabels) {
  Interner dict;
  auto v = Parse(R"({"persons": [{"name": "A"}, {"name": "B"}]})");
  Tree t = JsonToTree(v, &dict, "root", "person");
  // root -> persons -> person x2 -> name.
  EXPECT_EQ(t.NumNodes(), 6u);
  EXPECT_EQ(t.Depth(), 4u);
  EXPECT_EQ(dict.Name(t.node(1).label), "persons");
  const auto kids = t.ChildLabels(1);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(dict.Name(kids[0]), "person");
}

}  // namespace
}  // namespace rwdt::tree
