file(REMOVE_RECURSE
  "librwdt.a"
)
