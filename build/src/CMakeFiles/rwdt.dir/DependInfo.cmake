
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/interner.cc" "src/CMakeFiles/rwdt.dir/common/interner.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/common/interner.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/rwdt.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rwdt.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rwdt.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/common/status.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/rwdt.dir/common/table.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/common/table.cc.o.d"
  "/root/repo/src/core/log_study.cc" "src/CMakeFiles/rwdt.dir/core/log_study.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/core/log_study.cc.o.d"
  "/root/repo/src/core/studies.cc" "src/CMakeFiles/rwdt.dir/core/studies.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/core/studies.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/rwdt.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/rdf.cc" "src/CMakeFiles/rwdt.dir/graph/rdf.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/graph/rdf.cc.o.d"
  "/root/repo/src/graph/treewidth.cc" "src/CMakeFiles/rwdt.dir/graph/treewidth.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/graph/treewidth.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph.cc" "src/CMakeFiles/rwdt.dir/hypergraph/hypergraph.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/hypergraph/hypergraph.cc.o.d"
  "/root/repo/src/inference/crx.cc" "src/CMakeFiles/rwdt.dir/inference/crx.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/inference/crx.cc.o.d"
  "/root/repo/src/inference/kore.cc" "src/CMakeFiles/rwdt.dir/inference/kore.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/inference/kore.cc.o.d"
  "/root/repo/src/inference/rwr.cc" "src/CMakeFiles/rwdt.dir/inference/rwr.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/inference/rwr.cc.o.d"
  "/root/repo/src/inference/soa.cc" "src/CMakeFiles/rwdt.dir/inference/soa.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/inference/soa.cc.o.d"
  "/root/repo/src/loggen/corpus_gen.cc" "src/CMakeFiles/rwdt.dir/loggen/corpus_gen.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/loggen/corpus_gen.cc.o.d"
  "/root/repo/src/loggen/sparql_gen.cc" "src/CMakeFiles/rwdt.dir/loggen/sparql_gen.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/loggen/sparql_gen.cc.o.d"
  "/root/repo/src/paths/analysis.cc" "src/CMakeFiles/rwdt.dir/paths/analysis.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/paths/analysis.cc.o.d"
  "/root/repo/src/paths/path.cc" "src/CMakeFiles/rwdt.dir/paths/path.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/paths/path.cc.o.d"
  "/root/repo/src/paths/semantics.cc" "src/CMakeFiles/rwdt.dir/paths/semantics.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/paths/semantics.cc.o.d"
  "/root/repo/src/regex/ast.cc" "src/CMakeFiles/rwdt.dir/regex/ast.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/ast.cc.o.d"
  "/root/repo/src/regex/automaton.cc" "src/CMakeFiles/rwdt.dir/regex/automaton.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/automaton.cc.o.d"
  "/root/repo/src/regex/bkw.cc" "src/CMakeFiles/rwdt.dir/regex/bkw.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/bkw.cc.o.d"
  "/root/repo/src/regex/chain_algorithms.cc" "src/CMakeFiles/rwdt.dir/regex/chain_algorithms.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/chain_algorithms.cc.o.d"
  "/root/repo/src/regex/fragments.cc" "src/CMakeFiles/rwdt.dir/regex/fragments.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/fragments.cc.o.d"
  "/root/repo/src/regex/glushkov.cc" "src/CMakeFiles/rwdt.dir/regex/glushkov.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/glushkov.cc.o.d"
  "/root/repo/src/regex/parser.cc" "src/CMakeFiles/rwdt.dir/regex/parser.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/parser.cc.o.d"
  "/root/repo/src/regex/reduction.cc" "src/CMakeFiles/rwdt.dir/regex/reduction.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/reduction.cc.o.d"
  "/root/repo/src/regex/sampler.cc" "src/CMakeFiles/rwdt.dir/regex/sampler.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/sampler.cc.o.d"
  "/root/repo/src/regex/state_elimination.cc" "src/CMakeFiles/rwdt.dir/regex/state_elimination.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/regex/state_elimination.cc.o.d"
  "/root/repo/src/schema/bonxai.cc" "src/CMakeFiles/rwdt.dir/schema/bonxai.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/schema/bonxai.cc.o.d"
  "/root/repo/src/schema/dtd.cc" "src/CMakeFiles/rwdt.dir/schema/dtd.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/schema/dtd.cc.o.d"
  "/root/repo/src/schema/edtd.cc" "src/CMakeFiles/rwdt.dir/schema/edtd.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/schema/edtd.cc.o.d"
  "/root/repo/src/schema/json_schema.cc" "src/CMakeFiles/rwdt.dir/schema/json_schema.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/schema/json_schema.cc.o.d"
  "/root/repo/src/sparql/algebra.cc" "src/CMakeFiles/rwdt.dir/sparql/algebra.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/sparql/algebra.cc.o.d"
  "/root/repo/src/sparql/analysis.cc" "src/CMakeFiles/rwdt.dir/sparql/analysis.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/sparql/analysis.cc.o.d"
  "/root/repo/src/sparql/eval.cc" "src/CMakeFiles/rwdt.dir/sparql/eval.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/sparql/eval.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/CMakeFiles/rwdt.dir/sparql/parser.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/sparql/parser.cc.o.d"
  "/root/repo/src/tree/json.cc" "src/CMakeFiles/rwdt.dir/tree/json.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/tree/json.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/CMakeFiles/rwdt.dir/tree/tree.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/tree/tree.cc.o.d"
  "/root/repo/src/tree/xml.cc" "src/CMakeFiles/rwdt.dir/tree/xml.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/tree/xml.cc.o.d"
  "/root/repo/src/xpath/xpath.cc" "src/CMakeFiles/rwdt.dir/xpath/xpath.cc.o" "gcc" "src/CMakeFiles/rwdt.dir/xpath/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
