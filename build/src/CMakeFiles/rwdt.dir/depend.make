# Empty dependencies file for rwdt.
# This may be replaced when dependencies are built.
