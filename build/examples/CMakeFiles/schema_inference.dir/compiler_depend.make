# Empty compiler generated dependencies file for schema_inference.
# This may be replaced when dependencies are built.
