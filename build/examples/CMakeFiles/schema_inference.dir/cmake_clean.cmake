file(REMOVE_RECURSE
  "CMakeFiles/schema_inference.dir/schema_inference.cpp.o"
  "CMakeFiles/schema_inference.dir/schema_inference.cpp.o.d"
  "schema_inference"
  "schema_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
