# Empty dependencies file for log_study.
# This may be replaced when dependencies are built.
