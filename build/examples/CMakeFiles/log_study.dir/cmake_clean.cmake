file(REMOVE_RECURSE
  "CMakeFiles/log_study.dir/log_study.cpp.o"
  "CMakeFiles/log_study.dir/log_study.cpp.o.d"
  "log_study"
  "log_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
