# Empty dependencies file for graph_explorer.
# This may be replaced when dependencies are built.
