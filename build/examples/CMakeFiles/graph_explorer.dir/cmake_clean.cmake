file(REMOVE_RECURSE
  "CMakeFiles/graph_explorer.dir/graph_explorer.cpp.o"
  "CMakeFiles/graph_explorer.dir/graph_explorer.cpp.o.d"
  "graph_explorer"
  "graph_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
