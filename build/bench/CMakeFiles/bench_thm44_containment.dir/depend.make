# Empty dependencies file for bench_thm44_containment.
# This may be replaced when dependencies are built.
