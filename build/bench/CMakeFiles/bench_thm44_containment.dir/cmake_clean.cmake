file(REMOVE_RECURSE
  "CMakeFiles/bench_thm44_containment.dir/bench_thm44_containment.cc.o"
  "CMakeFiles/bench_thm44_containment.dir/bench_thm44_containment.cc.o.d"
  "bench_thm44_containment"
  "bench_thm44_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm44_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
