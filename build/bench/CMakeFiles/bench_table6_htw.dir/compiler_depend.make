# Empty compiler generated dependencies file for bench_table6_htw.
# This may be replaced when dependencies are built.
