file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_htw.dir/bench_table6_htw.cc.o"
  "CMakeFiles/bench_table6_htw.dir/bench_table6_htw.cc.o.d"
  "bench_table6_htw"
  "bench_table6_htw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_htw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
