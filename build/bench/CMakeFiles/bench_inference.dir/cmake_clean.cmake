file(REMOVE_RECURSE
  "CMakeFiles/bench_inference.dir/bench_inference.cc.o"
  "CMakeFiles/bench_inference.dir/bench_inference.cc.o.d"
  "bench_inference"
  "bench_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
