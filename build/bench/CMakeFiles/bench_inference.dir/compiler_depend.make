# Empty compiler generated dependencies file for bench_inference.
# This may be replaced when dependencies are built.
