file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_corpus.dir/bench_table2_corpus.cc.o"
  "CMakeFiles/bench_table2_corpus.dir/bench_table2_corpus.cc.o.d"
  "bench_table2_corpus"
  "bench_table2_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
