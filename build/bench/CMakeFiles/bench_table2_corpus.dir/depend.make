# Empty dependencies file for bench_table2_corpus.
# This may be replaced when dependencies are built.
