file(REMOVE_RECURSE
  "CMakeFiles/bench_thm45_intersection.dir/bench_thm45_intersection.cc.o"
  "CMakeFiles/bench_thm45_intersection.dir/bench_thm45_intersection.cc.o.d"
  "bench_thm45_intersection"
  "bench_thm45_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm45_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
