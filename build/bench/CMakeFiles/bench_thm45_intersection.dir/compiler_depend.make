# Empty compiler generated dependencies file for bench_thm45_intersection.
# This may be replaced when dependencies are built.
