# Empty dependencies file for bench_table4_cq_fragments.
# This may be replaced when dependencies are built.
