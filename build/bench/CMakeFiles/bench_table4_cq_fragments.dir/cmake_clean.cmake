file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cq_fragments.dir/bench_table4_cq_fragments.cc.o"
  "CMakeFiles/bench_table4_cq_fragments.dir/bench_table4_cq_fragments.cc.o.d"
  "bench_table4_cq_fragments"
  "bench_table4_cq_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cq_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
