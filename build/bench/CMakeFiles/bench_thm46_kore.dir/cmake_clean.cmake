file(REMOVE_RECURSE
  "CMakeFiles/bench_thm46_kore.dir/bench_thm46_kore.cc.o"
  "CMakeFiles/bench_thm46_kore.dir/bench_thm46_kore.cc.o.d"
  "bench_thm46_kore"
  "bench_thm46_kore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm46_kore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
