# Empty compiler generated dependencies file for bench_thm46_kore.
# This may be replaced when dependencies are built.
