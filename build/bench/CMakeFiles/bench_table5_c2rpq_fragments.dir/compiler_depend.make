# Empty compiler generated dependencies file for bench_table5_c2rpq_fragments.
# This may be replaced when dependencies are built.
