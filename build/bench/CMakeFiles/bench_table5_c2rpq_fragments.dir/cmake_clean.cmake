file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_c2rpq_fragments.dir/bench_table5_c2rpq_fragments.cc.o"
  "CMakeFiles/bench_table5_c2rpq_fragments.dir/bench_table5_c2rpq_fragments.cc.o.d"
  "bench_table5_c2rpq_fragments"
  "bench_table5_c2rpq_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_c2rpq_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
