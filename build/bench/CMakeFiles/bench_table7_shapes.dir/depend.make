# Empty dependencies file for bench_table7_shapes.
# This may be replaced when dependencies are built.
