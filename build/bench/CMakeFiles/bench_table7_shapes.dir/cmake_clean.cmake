file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_shapes.dir/bench_table7_shapes.cc.o"
  "CMakeFiles/bench_table7_shapes.dir/bench_table7_shapes.cc.o.d"
  "bench_table7_shapes"
  "bench_table7_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
