# Empty dependencies file for bench_table3_features.
# This may be replaced when dependencies are built.
