file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_features.dir/bench_table3_features.cc.o"
  "CMakeFiles/bench_table3_features.dir/bench_table3_features.cc.o.d"
  "bench_table3_features"
  "bench_table3_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
