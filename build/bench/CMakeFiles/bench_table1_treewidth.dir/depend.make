# Empty dependencies file for bench_table1_treewidth.
# This may be replaced when dependencies are built.
