file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_treewidth.dir/bench_table1_treewidth.cc.o"
  "CMakeFiles/bench_table1_treewidth.dir/bench_table1_treewidth.cc.o.d"
  "bench_table1_treewidth"
  "bench_table1_treewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
