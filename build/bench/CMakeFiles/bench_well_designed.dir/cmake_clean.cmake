file(REMOVE_RECURSE
  "CMakeFiles/bench_well_designed.dir/bench_well_designed.cc.o"
  "CMakeFiles/bench_well_designed.dir/bench_well_designed.cc.o.d"
  "bench_well_designed"
  "bench_well_designed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_well_designed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
