# Empty dependencies file for bench_well_designed.
# This may be replaced when dependencies are built.
