# Empty compiler generated dependencies file for bench_rdf_structure.
# This may be replaced when dependencies are built.
