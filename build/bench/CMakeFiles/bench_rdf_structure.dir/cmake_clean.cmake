file(REMOVE_RECURSE
  "CMakeFiles/bench_rdf_structure.dir/bench_rdf_structure.cc.o"
  "CMakeFiles/bench_rdf_structure.dir/bench_rdf_structure.cc.o.d"
  "bench_rdf_structure"
  "bench_rdf_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rdf_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
