file(REMOVE_RECURSE
  "CMakeFiles/bench_path_semantics.dir/bench_path_semantics.cc.o"
  "CMakeFiles/bench_path_semantics.dir/bench_path_semantics.cc.o.d"
  "bench_path_semantics"
  "bench_path_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
