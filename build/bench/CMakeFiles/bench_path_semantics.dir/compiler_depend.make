# Empty compiler generated dependencies file for bench_path_semantics.
# This may be replaced when dependencies are built.
