# Empty compiler generated dependencies file for bench_figure3_query_size.
# This may be replaced when dependencies are built.
