file(REMOVE_RECURSE
  "CMakeFiles/bench_xml_quality.dir/bench_xml_quality.cc.o"
  "CMakeFiles/bench_xml_quality.dir/bench_xml_quality.cc.o.d"
  "bench_xml_quality"
  "bench_xml_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xml_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
