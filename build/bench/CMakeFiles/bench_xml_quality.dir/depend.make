# Empty dependencies file for bench_xml_quality.
# This may be replaced when dependencies are built.
