file(REMOVE_RECURSE
  "CMakeFiles/bench_determinization.dir/bench_determinization.cc.o"
  "CMakeFiles/bench_determinization.dir/bench_determinization.cc.o.d"
  "bench_determinization"
  "bench_determinization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_determinization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
