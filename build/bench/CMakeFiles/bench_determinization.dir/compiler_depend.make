# Empty compiler generated dependencies file for bench_determinization.
# This may be replaced when dependencies are built.
