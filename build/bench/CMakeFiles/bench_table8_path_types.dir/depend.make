# Empty dependencies file for bench_table8_path_types.
# This may be replaced when dependencies are built.
