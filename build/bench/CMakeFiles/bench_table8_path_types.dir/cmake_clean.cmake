file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_path_types.dir/bench_table8_path_types.cc.o"
  "CMakeFiles/bench_table8_path_types.dir/bench_table8_path_types.cc.o.d"
  "bench_table8_path_types"
  "bench_table8_path_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_path_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
