# Empty dependencies file for bench_dtd_study.
# This may be replaced when dependencies are built.
