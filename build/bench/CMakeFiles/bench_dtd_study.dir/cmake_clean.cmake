file(REMOVE_RECURSE
  "CMakeFiles/bench_dtd_study.dir/bench_dtd_study.cc.o"
  "CMakeFiles/bench_dtd_study.dir/bench_dtd_study.cc.o.d"
  "bench_dtd_study"
  "bench_dtd_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dtd_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
