file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_a.dir/bench_appendix_a.cc.o"
  "CMakeFiles/bench_appendix_a.dir/bench_appendix_a.cc.o.d"
  "bench_appendix_a"
  "bench_appendix_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
