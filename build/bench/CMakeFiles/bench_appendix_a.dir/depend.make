# Empty dependencies file for bench_appendix_a.
# This may be replaced when dependencies are built.
