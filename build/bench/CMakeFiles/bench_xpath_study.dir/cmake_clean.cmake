file(REMOVE_RECURSE
  "CMakeFiles/bench_xpath_study.dir/bench_xpath_study.cc.o"
  "CMakeFiles/bench_xpath_study.dir/bench_xpath_study.cc.o.d"
  "bench_xpath_study"
  "bench_xpath_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xpath_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
