# Empty compiler generated dependencies file for bench_xpath_study.
# This may be replaced when dependencies are built.
