file(REMOVE_RECURSE
  "CMakeFiles/sparql_test.dir/sparql_test.cc.o"
  "CMakeFiles/sparql_test.dir/sparql_test.cc.o.d"
  "sparql_test"
  "sparql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
