# Empty dependencies file for sparql_test.
# This may be replaced when dependencies are built.
