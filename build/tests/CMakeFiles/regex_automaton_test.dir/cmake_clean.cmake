file(REMOVE_RECURSE
  "CMakeFiles/regex_automaton_test.dir/regex_automaton_test.cc.o"
  "CMakeFiles/regex_automaton_test.dir/regex_automaton_test.cc.o.d"
  "regex_automaton_test"
  "regex_automaton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
