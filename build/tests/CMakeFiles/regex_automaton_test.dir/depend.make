# Empty dependencies file for regex_automaton_test.
# This may be replaced when dependencies are built.
