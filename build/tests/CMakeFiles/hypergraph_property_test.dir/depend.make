# Empty dependencies file for hypergraph_property_test.
# This may be replaced when dependencies are built.
