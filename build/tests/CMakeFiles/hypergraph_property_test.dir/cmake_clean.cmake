file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_property_test.dir/hypergraph_property_test.cc.o"
  "CMakeFiles/hypergraph_property_test.dir/hypergraph_property_test.cc.o.d"
  "hypergraph_property_test"
  "hypergraph_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
