file(REMOVE_RECURSE
  "CMakeFiles/loggen_test.dir/loggen_test.cc.o"
  "CMakeFiles/loggen_test.dir/loggen_test.cc.o.d"
  "loggen_test"
  "loggen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loggen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
