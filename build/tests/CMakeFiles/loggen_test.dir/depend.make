# Empty dependencies file for loggen_test.
# This may be replaced when dependencies are built.
