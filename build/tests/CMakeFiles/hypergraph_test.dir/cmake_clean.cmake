file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_test.dir/hypergraph_test.cc.o"
  "CMakeFiles/hypergraph_test.dir/hypergraph_test.cc.o.d"
  "hypergraph_test"
  "hypergraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
