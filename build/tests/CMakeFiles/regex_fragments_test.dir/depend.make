# Empty dependencies file for regex_fragments_test.
# This may be replaced when dependencies are built.
