file(REMOVE_RECURSE
  "CMakeFiles/regex_fragments_test.dir/regex_fragments_test.cc.o"
  "CMakeFiles/regex_fragments_test.dir/regex_fragments_test.cc.o.d"
  "regex_fragments_test"
  "regex_fragments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_fragments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
