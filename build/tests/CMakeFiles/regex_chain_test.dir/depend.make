# Empty dependencies file for regex_chain_test.
# This may be replaced when dependencies are built.
