file(REMOVE_RECURSE
  "CMakeFiles/regex_chain_test.dir/regex_chain_test.cc.o"
  "CMakeFiles/regex_chain_test.dir/regex_chain_test.cc.o.d"
  "regex_chain_test"
  "regex_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
