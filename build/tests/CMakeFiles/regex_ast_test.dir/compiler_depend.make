# Empty compiler generated dependencies file for regex_ast_test.
# This may be replaced when dependencies are built.
