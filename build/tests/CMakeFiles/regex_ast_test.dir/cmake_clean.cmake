file(REMOVE_RECURSE
  "CMakeFiles/regex_ast_test.dir/regex_ast_test.cc.o"
  "CMakeFiles/regex_ast_test.dir/regex_ast_test.cc.o.d"
  "regex_ast_test"
  "regex_ast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
