file(REMOVE_RECURSE
  "CMakeFiles/regex_determinism_test.dir/regex_determinism_test.cc.o"
  "CMakeFiles/regex_determinism_test.dir/regex_determinism_test.cc.o.d"
  "regex_determinism_test"
  "regex_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
