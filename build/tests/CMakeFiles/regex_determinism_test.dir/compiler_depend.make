# Empty compiler generated dependencies file for regex_determinism_test.
# This may be replaced when dependencies are built.
