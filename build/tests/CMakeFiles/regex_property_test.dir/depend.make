# Empty dependencies file for regex_property_test.
# This may be replaced when dependencies are built.
