file(REMOVE_RECURSE
  "CMakeFiles/regex_property_test.dir/regex_property_test.cc.o"
  "CMakeFiles/regex_property_test.dir/regex_property_test.cc.o.d"
  "regex_property_test"
  "regex_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
