file(REMOVE_RECURSE
  "CMakeFiles/paths_test.dir/paths_test.cc.o"
  "CMakeFiles/paths_test.dir/paths_test.cc.o.d"
  "paths_test"
  "paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
