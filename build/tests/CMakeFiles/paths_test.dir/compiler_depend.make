# Empty compiler generated dependencies file for paths_test.
# This may be replaced when dependencies are built.
