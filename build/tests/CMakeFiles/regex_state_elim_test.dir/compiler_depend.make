# Empty compiler generated dependencies file for regex_state_elim_test.
# This may be replaced when dependencies are built.
