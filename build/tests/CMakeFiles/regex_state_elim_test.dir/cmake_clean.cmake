file(REMOVE_RECURSE
  "CMakeFiles/regex_state_elim_test.dir/regex_state_elim_test.cc.o"
  "CMakeFiles/regex_state_elim_test.dir/regex_state_elim_test.cc.o.d"
  "regex_state_elim_test"
  "regex_state_elim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_state_elim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
