# Empty compiler generated dependencies file for sparql_property_test.
# This may be replaced when dependencies are built.
