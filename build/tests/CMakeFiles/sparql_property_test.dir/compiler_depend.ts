# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sparql_property_test.
