file(REMOVE_RECURSE
  "CMakeFiles/sparql_property_test.dir/sparql_property_test.cc.o"
  "CMakeFiles/sparql_property_test.dir/sparql_property_test.cc.o.d"
  "sparql_property_test"
  "sparql_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
