# Empty dependencies file for regex_reduction_test.
# This may be replaced when dependencies are built.
