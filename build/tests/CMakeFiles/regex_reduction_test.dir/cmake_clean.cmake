file(REMOVE_RECURSE
  "CMakeFiles/regex_reduction_test.dir/regex_reduction_test.cc.o"
  "CMakeFiles/regex_reduction_test.dir/regex_reduction_test.cc.o.d"
  "regex_reduction_test"
  "regex_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
