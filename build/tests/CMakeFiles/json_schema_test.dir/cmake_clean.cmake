file(REMOVE_RECURSE
  "CMakeFiles/json_schema_test.dir/json_schema_test.cc.o"
  "CMakeFiles/json_schema_test.dir/json_schema_test.cc.o.d"
  "json_schema_test"
  "json_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
