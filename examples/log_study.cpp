// A miniature end-to-end "practical study" (paper Section 11): generate
// a query log, stream every query through the analysis engine, and print
// the study report the way the paper's tables do — plus the engine's
// parallel-speedup comparison and metrics snapshot.
//
//   $ ./build/examples/log_study [num_queries] [threads]
//
// The engine guarantees bit-identical aggregates for any thread count,
// which this example verifies by running threads=1 and threads=N over
// the same log and comparing the studies.
//
// Watch a run live: RWDT_PROGRESS=<ms> logs a one-line engine snapshot
// (entries/sec, cache hit rate, rejects) at that interval during the
// ingest phase, and RWDT_TRACE=<file> writes a Chrome/Perfetto trace of
// the per-worker pipeline stages. RWDT_ADMIN_PORT=<port> serves the
// admin endpoints (/metrics, /healthz, /readyz, /statusz, /tracez) for
// the ingest engine; RWDT_ADMIN_LINGER_MS=<ms> keeps them up after the
// run until GET /quitquitquit (or the deadline) releases the process —
// how CI scrapes a finished run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>

#include "rwdt.h"

int main(int argc, char** argv) {
  using namespace rwdt;
  using Clock = std::chrono::steady_clock;
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", common::BuildInfo::Get().ToString().c_str());
    return 0;
  }
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 4;

  // Optional observability, keyed off the environment so the default run
  // stays byte-identical: a trace collector records per-worker stage
  // spans, a progress interval makes the ingest below report live.
  const char* trace_path = std::getenv("RWDT_TRACE");
  std::unique_ptr<obs::TraceCollector> trace;
  if (trace_path != nullptr && trace_path[0] != '\0') {
    trace = std::make_unique<obs::TraceCollector>();
  }
  const char* progress_env = std::getenv("RWDT_PROGRESS");
  const uint32_t progress_ms =
      progress_env != nullptr
          ? static_cast<uint32_t>(std::strtoul(progress_env, nullptr, 10))
          : 0;
  // RWDT_PROFILE=<path|1> samples this whole run's CPU stacks into a
  // collapsed-stack file (RWDT_PROFILE_HZ overrides the 99 Hz default).
  auto self_profile = obs::MaybeStartEnvProfile("profile.collapsed");

  loggen::SourceProfile profile = loggen::ExampleProfile(n);
  profile.name = "mini-study";
  std::printf("analyzing a synthetic log of %llu queries...\n\n",
              static_cast<unsigned long long>(n));
  const auto entries = loggen::GenerateLog(profile, 7);

  auto run = [&](unsigned t, core::SourceStudy* study,
                 engine::MetricsSnapshot* snap) -> double {
    engine::EngineOptions opts;
    opts.threads = t;
    engine::Engine eng(opts);
    const auto t0 = Clock::now();
    *study = eng.AnalyzeEntries(profile.name, profile.wikidata_like, entries);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (snap != nullptr) *snap = eng.Snapshot();
    return ms;
  };

  core::SourceStudy single, study;
  engine::MetricsSnapshot snap;
  run(1, &single, nullptr);  // untimed warmup (allocator, page cache)
  const double ms1 = run(1, &single, nullptr);
  const double msN = run(threads, &study, &snap);
  if (!(single == study)) {
    RWDT_LOG(ERROR) << "threads=" << threads
                    << " study differs from threads=1";
    return 1;
  }
  std::printf(
      "engine: threads=1 took %.1f ms, threads=%u took %.1f ms "
      "(%.2fx speedup),\naggregate tables bit-identical.\n\n",
      ms1, threads, msN, ms1 / msN);

  std::printf("log: total %llu, valid %llu, unique %llu\n\n",
              static_cast<unsigned long long>(study.total),
              static_cast<unsigned long long>(study.valid),
              static_cast<unsigned long long>(study.unique));

  const core::LogAggregates& v = study.valid_agg;
  const core::LogAggregates& u = study.unique_agg;

  AsciiTable features({"Feature", "Valid", "Rel", "Unique", "Rel"});
  for (sparql::Feature f : sparql::AllFeatures()) {
    auto count = [&](const core::LogAggregates& a) -> uint64_t {
      auto it = a.feature_counts.find(f);
      return it == a.feature_counts.end() ? 0 : it->second;
    };
    if (count(v) == 0) continue;
    features.AddRow({sparql::FeatureName(f), WithThousands(count(v)),
                     Percent(count(v), v.select_ask_construct),
                     WithThousands(count(u)),
                     Percent(count(u), u.select_ask_construct)});
  }
  std::printf("feature usage:\n%s\n", features.Render().c_str());

  AsciiTable fragments({"Fragment", "Valid", "Rel"});
  fragments.AddRow({"CQ (only And)", WithThousands(v.cq),
                    Percent(v.cq, v.select_ask_construct)});
  fragments.AddRow({"CQ+F", WithThousands(v.cq_f),
                    Percent(v.cq_f, v.select_ask_construct)});
  fragments.AddRow({"C2RPQ+F", WithThousands(v.c2rpq_f),
                    Percent(v.c2rpq_f, v.select_ask_construct)});
  fragments.AddRow({"And/Filter/Optional only", WithThousands(v.afo_only),
                    Percent(v.afo_only, v.select_ask_construct)});
  fragments.AddRow({"  of which well-designed",
                    WithThousands(v.well_designed),
                    Percent(v.well_designed, v.afo_only)});
  std::printf("fragments:\n%s\n", fragments.Render().c_str());

  AsciiTable structure({"Structure (CQ+F)", "Valid", "Rel"});
  structure.AddRow({"free-connex acyclic", WithThousands(v.cqf_fca),
                    Percent(v.cqf_fca, v.cq_f)});
  structure.AddRow({"hypertree width <= 1", WithThousands(v.cqf_htw1),
                    Percent(v.cqf_htw1, v.cq_f)});
  structure.AddRow({"hypertree width <= 2", WithThousands(v.cqf_htw2),
                    Percent(v.cqf_htw2, v.cq_f)});
  std::printf("structure:\n%s\n", structure.Render().c_str());

  AsciiTable shapes({"Shape (with constants)", "Valid", "Rel"});
  for (const auto& [shape, count] : v.shapes_with_constants) {
    shapes.AddRow({hypergraph::GraphShapeName(shape),
                   WithThousands(count), Percent(count, v.graph_cqf)});
  }
  std::printf("shapes of graph-CQ+F queries:\n%s", shapes.Render().c_str());
  std::printf(
      "\nLesson from Section 11 ('The Right Perspective'): %s of these\n"
      "queries have at most one triple pattern, which explains most of "
      "the\nconjunctive dominance above.\n\n",
      Percent(v.triple_histogram[0] + v.triple_histogram[1],
              v.select_ask_construct)
          .c_str());

  std::printf("%s", snap.ToText().c_str());

  // Real logs are never clean: corrupt a copy of the log, serialize it to
  // text, and stream it back through the fault-tolerant ingest layer. The
  // Total-vs-Valid row and the per-class reject counts show how much of
  // the log survived and why the rest was dropped.
  auto corrupted = entries;
  loggen::CorruptionOptions copts;
  copts.rate = 0.2;
  const auto summary = loggen::CorruptLog(&corrupted, 99, copts);
  std::stringstream log_text;
  loggen::WriteLogText(corrupted, log_text);

  ingest::IngestOptions iopts;
  iopts.source_name = profile.name;
  iopts.wikidata_like = profile.wikidata_like;
  iopts.progress.interval_ms = progress_ms;  // live one-line snapshots

  // The ingest runs on an engine we own (rather than an IngestStream
  // internal one) so its admin endpoints — enabled via RWDT_ADMIN_PORT,
  // off and free by default — expose this phase live and stay
  // scrapeable after it finishes.
  engine::EngineOptions eng_opts;
  eng_opts.threads = threads;
  eng_opts.admin_port = obs::AdminPortFromEnv();
  engine::Engine ingest_engine(eng_opts);
  auto ingested = ingest::IngestStream(log_text, &ingest_engine, iopts);
  if (!ingested.ok()) {
    RWDT_LOG(ERROR) << "ingest failed: " << ingested.error_message();
    return 1;
  }
  const ingest::IngestReport& report = ingested.value();

  std::printf(
      "\nsame log with %llu of %llu queries corrupted, re-read from text:\n",
      static_cast<unsigned long long>(summary.corrupted),
      static_cast<unsigned long long>(entries.size()));
  AsciiTable errors({"Row", "Queries", "Rel"});
  errors.AddRow({"Total", WithThousands(report.study.total), "100.0%"});
  errors.AddRow({"Valid", WithThousands(report.study.valid),
                 Percent(report.study.valid, report.study.total)});
  errors.AddRow({"Unique", WithThousands(report.study.unique),
                 Percent(report.study.unique, report.study.total)});
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    const uint64_t count = report.study.errors[c];
    if (count == 0) continue;
    errors.AddRow({std::string("  ") + ErrorClassName(ErrorClass(c)),
                   WithThousands(count),
                   Percent(count, report.study.total)});
  }
  std::printf("%s", errors.Render().c_str());

  if (trace != nullptr) {
    const Status st = trace->WriteChromeJson(trace_path);
    if (!st.ok()) {
      RWDT_LOG(ERROR) << "trace export failed: " << st.message();
    } else {
      RWDT_LOG(INFO) << "trace: " << trace->events_recorded()
                     << " spans written to " << trace_path
                     << " — open in Perfetto / chrome://tracing";
    }
  }

  if (self_profile != nullptr) {
    const Status finished = self_profile->Finish();
    if (!finished.ok()) {
      RWDT_LOG(ERROR) << "profile export failed: " << finished.message();
    }
  }

  // Linger: keep the admin endpoints up after the workload so an
  // external scraper (CI, a human with curl) can read the finished
  // run's /metrics, /statusz, and /tracez. GET /quitquitquit releases
  // the process early; the deadline bounds it.
  const char* linger_env = std::getenv("RWDT_ADMIN_LINGER_MS");
  const uint32_t linger_ms =
      linger_env != nullptr
          ? static_cast<uint32_t>(std::strtoul(linger_env, nullptr, 10))
          : 0;
  if (linger_ms > 0 && ingest_engine.admin_server() != nullptr) {
    RWDT_LOG(INFO) << "lingering up to " << linger_ms
                   << " ms for admin scrapes (GET /quitquitquit to release)";
    ingest_engine.admin_server()->WaitForQuit(linger_ms);
  }
  return 0;
}
