// A miniature end-to-end "practical study" (paper Section 11): generate
// a query log, push every query through the analysis pipeline, and print
// the study report the way the paper's tables do.
//
//   $ ./build/examples/log_study [num_queries]

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "core/log_study.h"

int main(int argc, char** argv) {
  using namespace rwdt;
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  loggen::SourceProfile profile = loggen::ExampleProfile(n);
  profile.name = "mini-study";
  std::printf("analyzing a synthetic log of %llu queries...\n\n",
              static_cast<unsigned long long>(n));
  const core::SourceStudy study = core::AnalyzeLog(profile, 7);

  std::printf("log: total %llu, valid %llu, unique %llu\n\n",
              static_cast<unsigned long long>(study.total),
              static_cast<unsigned long long>(study.valid),
              static_cast<unsigned long long>(study.unique));

  const core::LogAggregates& v = study.valid_agg;
  const core::LogAggregates& u = study.unique_agg;

  AsciiTable features({"Feature", "Valid", "Rel", "Unique", "Rel"});
  for (sparql::Feature f : sparql::AllFeatures()) {
    auto count = [&](const core::LogAggregates& a) -> uint64_t {
      auto it = a.feature_counts.find(f);
      return it == a.feature_counts.end() ? 0 : it->second;
    };
    if (count(v) == 0) continue;
    features.AddRow({sparql::FeatureName(f), WithThousands(count(v)),
                     Percent(count(v), v.select_ask_construct),
                     WithThousands(count(u)),
                     Percent(count(u), u.select_ask_construct)});
  }
  std::printf("feature usage:\n%s\n", features.Render().c_str());

  AsciiTable fragments({"Fragment", "Valid", "Rel"});
  fragments.AddRow({"CQ (only And)", WithThousands(v.cq),
                    Percent(v.cq, v.select_ask_construct)});
  fragments.AddRow({"CQ+F", WithThousands(v.cq_f),
                    Percent(v.cq_f, v.select_ask_construct)});
  fragments.AddRow({"C2RPQ+F", WithThousands(v.c2rpq_f),
                    Percent(v.c2rpq_f, v.select_ask_construct)});
  fragments.AddRow({"And/Filter/Optional only", WithThousands(v.afo_only),
                    Percent(v.afo_only, v.select_ask_construct)});
  fragments.AddRow({"  of which well-designed",
                    WithThousands(v.well_designed),
                    Percent(v.well_designed, v.afo_only)});
  std::printf("fragments:\n%s\n", fragments.Render().c_str());

  AsciiTable structure({"Structure (CQ+F)", "Valid", "Rel"});
  structure.AddRow({"free-connex acyclic", WithThousands(v.cqf_fca),
                    Percent(v.cqf_fca, v.cq_f)});
  structure.AddRow({"hypertree width <= 1", WithThousands(v.cqf_htw1),
                    Percent(v.cqf_htw1, v.cq_f)});
  structure.AddRow({"hypertree width <= 2", WithThousands(v.cqf_htw2),
                    Percent(v.cqf_htw2, v.cq_f)});
  std::printf("structure:\n%s\n", structure.Render().c_str());

  AsciiTable shapes({"Shape (with constants)", "Valid", "Rel"});
  for (const auto& [shape, count] : v.shapes_with_constants) {
    shapes.AddRow({hypergraph::GraphShapeName(shape),
                   WithThousands(count), Percent(count, v.graph_cqf)});
  }
  std::printf("shapes of graph-CQ+F queries:\n%s", shapes.Render().c_str());
  std::printf(
      "\nLesson from Section 11 ('The Right Perspective'): %s of these\n"
      "queries have at most one triple pattern, which explains most of "
      "the\nconjunctive dominance above.\n",
      Percent(v.triple_histogram[0] + v.triple_histogram[1],
              v.select_ask_construct)
          .c_str());
  return 0;
}
