// Graph-data exploration (paper Sections 7-9): build an RDF dataset,
// inspect its structure, run a regular path query under the three
// semantics of Section 9.6, and bound the treewidth of the underlying
// graph as in the Maniu et al. study.
//
//   $ ./build/examples/graph_explorer

#include <cstdio>
#include <cstring>

#include "rwdt.h"

int main(int argc, char** argv) {
  using namespace rwdt;
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", common::BuildInfo::Get().ToString().c_str());
    return 0;
  }
  Interner dict;
  Rng rng(11);

  graph::TripleStore store =
      graph::MakeRdfDataset(/*num_entities=*/1200, /*num_classes=*/4,
                            /*predicates_per_class=*/3, &dict, rng);

  const graph::RdfStructureStats stats =
      graph::AnalyzeRdfStructure(store);
  std::printf("dataset: %zu triples, %zu subjects, %zu predicates, %zu "
              "objects\n",
              stats.num_triples, stats.num_subjects, stats.num_predicates,
              stats.num_objects);
  std::printf("in-degree: mean %.2f, max %.0f, power-law alpha %.2f\n",
              stats.in_degree_mean, stats.in_degree_max,
              stats.in_degree_alpha);
  std::printf("distinct predicate lists / subjects: %.4f (Fernandez et "
              "al.: ~0.01)\n\n",
              stats.predicate_list_ratio);

  // A transitive property path over the entity-link predicate.
  auto path = paths::ParsePath("pred:links_to+", &dict);
  if (!path.ok()) return 1;
  std::printf("path %s : Table 8 type '%s', STE: %s\n\n",
              path.value()->ToString(dict).c_str(),
              paths::Table8TypeName(
                  paths::ClassifyTable8(*path.value()))
                  .c_str(),
              paths::IsSimpleTransitiveExpression(*path.value()) ? "yes"
                                                                 : "no");

  const SymbolId src = dict.Intern("ent:0");
  const SymbolId dst = dict.Intern("ent:37");
  struct Case {
    const char* name;
    paths::PathSemantics semantics;
  };
  for (const Case c : {Case{"walk (SPARQL default)",
                            paths::PathSemantics::kWalk},
                       Case{"simple path", paths::PathSemantics::kSimplePath},
                       Case{"trail", paths::PathSemantics::kTrail}}) {
    const auto match = paths::MatchPath(store, *path.value(), src, dst,
                                        c.semantics);
    std::printf("%-22s: %s (decided: %s, %llu search steps)\n", c.name,
                match.matched ? "reachable" : "not reachable",
                match.decided ? "yes" : "budget exhausted",
                static_cast<unsigned long long>(match.steps));
  }

  // Treewidth bounds of the underlying undirected graph.
  const graph::SimpleGraph g = graph::ToSimpleGraph(store);
  std::printf("\nunderlying graph: %zu vertices, %zu edges\n",
              g.NumVertices(), g.NumEdges());
  std::printf("treewidth bounds: %zu <= tw <= %zu (degeneracy/MMD+ vs "
              "min-degree)\n",
              std::max(graph::TreewidthLowerBoundDegeneracy(g),
                       graph::TreewidthLowerBoundMmdPlus(g)),
              graph::TreewidthUpperBoundMinDegree(g));
  std::printf(
      "Maniu et al.'s conclusion (Section 7.1): widths like this are too "
      "large\nfor treewidth-based query algorithms on the full graph.\n");
  return 0;
}
