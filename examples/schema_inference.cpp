// Schema inference end to end (paper Sections 3-4): parse XML documents,
// infer a DTD with the RWR (SORE) algorithm, check determinism and
// fragment membership of the inferred content models, and validate the
// corpus against its own inferred schema.
//
//   $ ./build/examples/schema_inference

#include <cstdio>
#include <cstring>
#include <map>

#include "rwdt.h"

int main(int argc, char** argv) {
  using namespace rwdt;
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", common::BuildInfo::Get().ToString().c_str());
    return 0;
  }
  Interner dict;

  const std::vector<std::string> documents = {
      "<persons>"
      "<person pers_id='1'><name>Aretha</name>"
      "<birthplace><city>Memphis</city><state>Tennessee</state>"
      "<country>US</country></birthplace></person>"
      "</persons>",
      "<persons>"
      "<person pers_id='2'><name>Miles</name>"
      "<birthplace><city>Alton</city><state>Illinois</state>"
      "</birthplace></person>"
      "<person pers_id='3'><name>Nina</name>"
      "<birthplace><city>Tryon</city><state>NC</state>"
      "<country>US</country></birthplace></person>"
      "</persons>",
      "<persons/>",
  };

  // Parse the corpus and collect, per element label, the sample of child
  // words (the input to DTD inference).
  std::vector<tree::Tree> trees;
  std::map<SymbolId, std::vector<std::vector<SymbolId>>> samples;
  SymbolId root_label = kInvalidSymbol;
  for (const auto& text : documents) {
    auto parsed = tree::ParseXml(text, &dict);
    if (!parsed.ok()) {
      std::printf("document rejected: %s\n", parsed.error_message().c_str());
      continue;
    }
    tree::XmlDocument doc = std::move(parsed).value();
    root_label = doc.tree.node(doc.tree.root()).label;
    for (tree::NodeId id : doc.tree.PreOrder()) {
      samples[doc.tree.node(id).label].push_back(doc.tree.ChildLabels(id));
    }
    trees.push_back(std::move(doc.tree));
  }
  std::printf("parsed %zu documents\n\n", trees.size());

  // Infer one SORE per element (the RWR algorithm of Section 4.2.3).
  schema::Dtd dtd;
  dtd.start.insert(root_label);
  for (const auto& [label, words] : samples) {
    const auto result = inference::InferSore(words);
    dtd.rules[label] = result.expression;
    std::printf("%-12s -> %-28s [%s%s%s]\n", dict.Name(label).c_str(),
                result.expression->ToString(dict).c_str(),
                regex::IsDeterministic(result.expression)
                    ? "deterministic"
                    : "NON-deterministic",
                regex::IsSore(result.expression) ? ", SORE" : "",
                regex::ToChainRegex(result.expression).has_value()
                    ? ", chain"
                    : "");
  }

  std::printf("\ninferred DTD:\n%s\n",
              schema::DtdToString(dtd, dict).c_str());

  // Soundness: every sampled document validates.
  schema::DtdValidator validator(dtd);
  for (size_t i = 0; i < trees.size(); ++i) {
    const auto v = validator.Validate(trees[i]);
    std::printf("document %zu validates: %s\n", i,
                v.valid ? "yes" : v.message.c_str());
  }

  // Streaming validation with bounded memory (Segoufin-Vianu).
  if (auto depth = schema::MaxDocumentDepth(dtd); depth.has_value()) {
    std::printf(
        "\nDTD is non-recursive; max document depth %zu, so streaming\n"
        "validation runs with a constant-size stack.\n",
        *depth);
  }
  return 0;
}
