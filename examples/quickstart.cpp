// Quickstart: parse a SPARQL query, run the paper's per-query analyses,
// and execute it over a tiny RDF graph with an explained,
// classifier-dispatched plan.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "rwdt.h"

int main(int argc, char** argv) {
  using namespace rwdt;
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", common::BuildInfo::Get().ToString().c_str());
    return 0;
  }
  Interner dict;

  // The paper's Wikidata example: "Locations of archaeological sites".
  const std::string text =
      "SELECT ?label ?coord ?subj WHERE { "
      "  ?subj wdt:P31/wdt:P279* wd:Q839954 . "
      "  ?subj wdt:P625 ?coord . "
      "  ?subj rdfs:label ?label FILTER(lang(?label)=\"en\") }";
  std::printf("query:\n%s\n\n", text.c_str());

  auto parsed = sparql::ParseSparql(text, &dict);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const sparql::Query& query = parsed.value();

  // --- classify like the log studies do -------------------------------
  std::printf("triple patterns: %zu\n",
              query.pattern->NumTriplePatterns());
  std::printf("features:");
  for (sparql::Feature f : sparql::ExtractFeatures(query)) {
    std::printf(" [%s]", sparql::FeatureName(f).c_str());
  }
  const sparql::OperatorSet ops = sparql::ExtractOperatorSet(query);
  std::printf("\nfragment: %s\n",
              ops.IsCq()      ? "CQ"
              : ops.IsCqF()   ? "CQ+F"
              : ops.IsC2RpqF() ? "C2RPQ+F"
                               : "beyond C2RPQ+F");

  hypergraph::Hypergraph h =
      hypergraph::BuildCanonicalHypergraph(query, true);
  std::printf("canonical hypergraph: %zu vertices, %zu edges; acyclic: %s\n",
              h.num_vertices, h.edges.size(),
              hypergraph::IsAcyclic(h) ? "yes" : "no");
  std::printf("canonical graph shape: %s\n",
              hypergraph::GraphShapeName(
                  hypergraph::ClassifyShape(hypergraph::BuildCanonicalGraph(
                      query, /*include_constants=*/true)))
                  .c_str());

  std::vector<const sparql::PathTriple*> path_triples;
  query.pattern->CollectPathTriples(&path_triples);
  for (const auto* pt : path_triples) {
    std::printf("property path %s : type %s, %s\n",
                pt->path->ToString(dict).c_str(),
                paths::Table8TypeName(paths::ClassifyTable8(*pt->path))
                    .c_str(),
                paths::IsSimpleTransitiveExpression(*pt->path)
                    ? "simple transitive expression"
                    : "not an STE");
  }

  // --- evaluate over a toy graph ---------------------------------------
  graph::TripleStore store;
  auto add = [&](const char* s, const char* p, const char* o) {
    store.Add(dict.Intern(s), dict.Intern(p), dict.Intern(o));
  };
  add("site:giza", "wdt:P31", "class:pyramid_field");
  add("class:pyramid_field", "wdt:P279", "class:arch_site_type");
  add("class:arch_site_type", "wdt:P279", "wd:Q839954");
  add("site:giza", "wdt:P625", "\"29.97N 31.13E\"");
  add("site:giza", "rdfs:label", "\"Giza Necropolis\"@en");
  add("site:troy", "wdt:P31", "wd:Q839954");
  add("site:troy", "wdt:P625", "\"39.95N 26.23E\"");
  add("site:troy", "rdfs:label", "\"Troy\"@en");

  // The executor plans on the same classification verdict the studies
  // (and /v1/classify) compute, and explains which certified fragment
  // picked the plan.
  exec::Executor executor(store, &dict);
  auto plan = executor.MakePlan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nplan (%s): %s\n", exec::StrategyName(plan.value().strategy),
              plan.value().reason.c_str());
  std::printf("%s\n", plan.value().ToJson().c_str());

  const auto result = executor.Execute(plan.value());
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& rows = result.value();
  std::printf("\n%zu solutions:\n", rows.size());
  for (const auto& mu : rows) {
    for (const auto& [var, value] : mu) {
      std::printf("  %s = %s", dict.Name(var).c_str(),
                  dict.Name(value).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
