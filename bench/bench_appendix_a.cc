// Exercises the Appendix A reduction end to end: DNF validity instances
// are encoded as RE(a,a?) containment instances; the automata-based
// decision agrees with brute-force validity, and the decision time grows
// with the variable count (coNP-hardness in action).

#include <cstdio>

#include <chrono>

#include "common/interner.h"
#include "common/rng.h"
#include "common/table.h"
#include "regex/automaton.h"
#include "regex/glushkov.h"
#include "regex/reduction.h"

int main() {
  using namespace rwdt;
  using namespace rwdt::regex;
  std::printf(
      "=== Appendix A: DNF validity as RE(a,a?) containment ===\n");

  Rng rng(4242);
  AsciiTable table({"vars", "clauses", "instances", "agreements",
                    "lhs size", "rhs size", "avg decide (us)"});
  for (size_t num_vars = 2; num_vars <= 7; ++num_vars) {
    const size_t num_clauses = 3;
    const int instances = 12;
    int agree = 0;
    size_t lhs_size = 0, rhs_size = 0;
    double total_us = 0;
    for (int i = 0; i < instances; ++i) {
      DnfFormula f;
      f.num_vars = num_vars;
      for (size_t c = 0; c < num_clauses; ++c) {
        DnfFormula::Clause clause;
        const size_t width = 1 + rng.NextBelow(2);
        for (size_t l = 0; l < width; ++l) {
          const int var = 1 + static_cast<int>(rng.NextBelow(num_vars));
          clause.push_back(rng.NextBool(0.5) ? var : -var);
        }
        clause.push_back(rng.NextBool(0.5)
                             ? -(1 + static_cast<int>(rng.NextBelow(
                                         num_vars)))
                             : (1 + static_cast<int>(rng.NextBelow(
                                        num_vars))));
        f.clauses.push_back(std::move(clause));
      }
      // Make validity plausible half the time: add x ∨ ¬x clauses.
      if (rng.NextBool(0.5)) {
        f.clauses.push_back({1});
        f.clauses.push_back({-1});
      }
      Interner dict;
      const auto inst = EncodeValidityAsContainment(f, &dict);
      lhs_size = inst.lhs->Size();
      rhs_size = inst.rhs->Size();
      const auto start = std::chrono::steady_clock::now();
      const bool contained = IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs));
      const auto stop = std::chrono::steady_clock::now();
      total_us += std::chrono::duration<double, std::micro>(stop - start)
                      .count();
      if (contained == f.IsValidBruteForce()) ++agree;
    }
    table.AddRow({std::to_string(num_vars), std::to_string(num_clauses),
                  std::to_string(instances), std::to_string(agree),
                  std::to_string(lhs_size), std::to_string(rhs_size),
                  Fixed(total_us / instances, 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nEvery row must show agreements == instances (the reduction is "
      "correct);\nthe per-instance decision time grows with the number "
      "of variables, the\ncoNP-hardness shape of Theorem 4.4(d).\n");
  return 0;
}
