// Engine throughput bench: streams the same generated DBpedia-like log
// through rwdt::engine at several thread counts, checks that the
// aggregates are identical, and writes the timings to
// BENCH_log_study.json so the perf trajectory is tracked across PRs.
//
//   $ ./build/bench/bench_log_study [num_queries]
//
// Environment: RWDT_BENCH_ENTRIES=<n> sets the workload size when no
// argument is given (default 200000 — large enough that thread scaling
// is measurable above fixed costs); RWDT_BENCH_THREADS="1,2,4"
// overrides the sweep; RWDT_BENCH_JSON overrides the output path;
// RWDT_TRACE=<file> records a Chrome/Perfetto trace of the whole sweep;
// RWDT_PROGRESS=<ms> enables live one-line progress reporting at that
// interval.
//
// The JSON output carries `speedup_vs_1t` per run (wall of the
// 1-thread run divided by this run's wall) and the machine's
// `hw_threads`, so CI can gate on parallel-scaling regressions and skip
// the gate on single-core runners where speedup is physically capped.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/build_info.h"
#include "common/table.h"
#include "engine/engine.h"
#include "obs/admin_server.h"
#include "study_util.h"

namespace {

std::vector<unsigned> ThreadSweep() {
  std::vector<unsigned> sweep;
  const char* env = std::getenv("RWDT_BENCH_THREADS");
  std::string spec = env != nullptr ? env : "1,2,4";
  size_t pos = 0;
  while (pos < spec.size()) {
    sweep.push_back(
        static_cast<unsigned>(std::strtoul(spec.c_str() + pos, nullptr, 10)));
    pos = spec.find(',', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rwdt;
  using Clock = std::chrono::steady_clock;

  const char* entries_env = std::getenv("RWDT_BENCH_ENTRIES");
  const uint64_t default_n =
      entries_env != nullptr ? std::strtoull(entries_env, nullptr, 10)
                             : 200000;
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : default_n;
  loggen::SourceProfile profile = loggen::ExampleProfile(n);
  profile.name = "bench-log-study";
  const uint64_t seed = 2022;

  auto trace = bench::MaybeStartBenchTrace();
  auto self_profile = bench::MaybeStartBenchProfile("profile.collapsed");
  const char* progress_env = std::getenv("RWDT_PROGRESS");
  const uint32_t progress_ms =
      progress_env != nullptr
          ? static_cast<uint32_t>(std::strtoul(progress_env, nullptr, 10))
          : 0;

  // Generate once so the sweep times only the analysis pipeline.
  const auto entries = loggen::GenerateLog(profile, seed);
  std::printf("log: %zu entries; sweeping threads...\n\n", entries.size());

  struct Run {
    unsigned threads;
    double wall_ms;
    engine::MetricsSnapshot snap;
  };
  std::vector<Run> runs;
  core::SourceStudy reference;
  double base_ms = 0;

  {
    // Untimed warmup so the first sweep element doesn't pay the
    // allocator / page-cache cost for everyone.
    engine::Engine warm(engine::EngineOptions{});
    warm.AnalyzeEntries(profile.name, profile.wikidata_like, entries);
  }

  AsciiTable table({"Threads", "Wall", "Queries/s", "Speedup", "Hit rate"});
  // RWDT_ADMIN_PORT exposes the currently-sweeping engine's admin
  // endpoints. kAdminPortAuto is not meaningful here (the port would
  // change per engine); a fixed port is rebound by each sweep element.
  const uint32_t admin_port = obs::AdminPortFromEnv();
  for (unsigned threads : ThreadSweep()) {
    engine::EngineOptions opts;
    opts.threads = threads;
    opts.progress.interval_ms = progress_ms;
    opts.admin_port = admin_port;
    engine::Engine eng(opts);
    const auto t0 = Clock::now();
    const core::SourceStudy study =
        eng.AnalyzeEntries(profile.name, profile.wikidata_like, entries);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (runs.empty()) {
      reference = study;
      base_ms = ms;
    } else if (!(study == reference)) {
      RWDT_LOG(ERROR) << "aggregates at threads=" << threads
                      << " differ from threads=" << runs.front().threads;
      return 1;
    }
    Run run{threads, ms, eng.Snapshot()};
    table.AddRow({std::to_string(threads), Fixed(ms, 1) + " ms",
                  WithThousands(static_cast<uint64_t>(
                      run.snap.QueriesPerSec())),
                  Fixed(base_ms / ms, 2) + "x",
                  Fixed(100.0 * run.snap.CacheHitRate(), 1) + "%"});
    runs.push_back(std::move(run));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("aggregates identical across the sweep (valid=%llu unique=%llu)\n\n",
              static_cast<unsigned long long>(reference.valid),
              static_cast<unsigned long long>(reference.unique));
  std::printf("%s\n", runs.back().snap.ToText().c_str());

  const char* json_env = std::getenv("RWDT_BENCH_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_log_study.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  // speedup_vs_1t is normalized against the sweep's 1-thread run (the
  // first run if the sweep has no 1-thread element).
  double one_thread_ms = runs.front().wall_ms;
  for (const Run& r : runs) {
    if (r.threads == 1) one_thread_ms = r.wall_ms;
  }
  std::fprintf(out,
               "{\"bench\":\"log_study\",\"provenance\":%s,"
               "\"entries\":%zu,"
               "\"runs\":[",
               bench::ProvenanceJson().c_str(), entries.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(
        out,
        "%s{\"threads\":%u,\"wall_ms\":%.3f,\"speedup_vs_1t\":%.3f,"
        "\"metrics\":%s}",
        i == 0 ? "" : ",", runs[i].threads, runs[i].wall_ms,
        one_thread_ms / runs[i].wall_ms, runs[i].snap.ToJson().c_str());
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  bench::FinishBenchTrace(std::move(trace));
  bench::FinishBenchProfile(std::move(self_profile));
  return 0;
}
