#ifndef RWDT_BENCH_STUDY_UTIL_H_
#define RWDT_BENCH_STUDY_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/log_study.h"
#include "engine/engine.h"
#include "loggen/sparql_gen.h"

namespace rwdt::bench {

/// Shared driver for the Table 2-8 / Figure 3 benchmarks: runs the full
/// log-study pipeline over the seventeen Table 2 source profiles on the
/// streaming engine.
///
/// `scale` divides the paper's query counts; the default keeps each
/// bench binary in the seconds range. Override with the RWDT_SCALE
/// environment variable (smaller value = bigger corpus) and the worker
/// count with RWDT_THREADS (default: one per hardware thread; results
/// are bit-identical for any value).
struct StudyCorpus {
  std::vector<core::SourceStudy> sources;
  core::SourceStudy dbpedia_britm;  // merged non-Wikidata sources
  core::SourceStudy wikidata;       // merged Wikidata sources
  engine::MetricsSnapshot metrics;  // pipeline counters for the whole run
};

inline uint64_t ScaleFromEnv(uint64_t fallback) {
  const char* env = std::getenv("RWDT_SCALE");
  if (env == nullptr) return fallback;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

inline unsigned ThreadsFromEnv() {
  const char* env = std::getenv("RWDT_THREADS");
  if (env == nullptr) return 0;  // engine default: hardware threads
  return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

inline StudyCorpus RunFullStudy(uint64_t scale, uint64_t seed = 2022) {
  StudyCorpus corpus;
  corpus.dbpedia_britm.name = "DBpedia-BritM";
  corpus.wikidata.name = "Wikidata";
  engine::EngineOptions opts;
  opts.threads = ThreadsFromEnv();
  engine::Engine eng(opts);  // one engine: the cache warms across sources
  for (const auto& profile : loggen::Table2Profiles(scale)) {
    std::fprintf(stderr, "  analyzing %-16s (%llu queries, %u threads)...\n",
                 profile.name.c_str(),
                 static_cast<unsigned long long>(profile.total_queries),
                 eng.threads());
    core::SourceStudy study = eng.AnalyzeLog(profile, seed);
    if (profile.wikidata_like) {
      core::MergeSource(study, &corpus.wikidata);
    } else {
      core::MergeSource(study, &corpus.dbpedia_britm);
    }
    corpus.sources.push_back(std::move(study));
  }
  corpus.metrics = eng.Snapshot();
  std::fprintf(stderr, "%s\n", corpus.metrics.ToText().c_str());
  return corpus;
}

/// Appends this run's metrics to a machine-readable JSON file (one JSON
/// object per line) so perf is comparable across PRs.
inline void AppendBenchJson(const std::string& bench_name,
                            const engine::MetricsSnapshot& snap,
                            const char* path = "BENCH_study_metrics.jsonl") {
  FILE* out = std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out, "{\"bench\":\"%s\",\"metrics\":%s}\n", bench_name.c_str(),
               snap.ToJson().c_str());
  std::fclose(out);
}

}  // namespace rwdt::bench

#endif  // RWDT_BENCH_STUDY_UTIL_H_
