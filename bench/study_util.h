#ifndef RWDT_BENCH_STUDY_UTIL_H_
#define RWDT_BENCH_STUDY_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/log_study.h"
#include "loggen/sparql_gen.h"

namespace rwdt::bench {

/// Shared driver for the Table 2-8 / Figure 3 benchmarks: runs the full
/// log-study pipeline over the seventeen Table 2 source profiles.
///
/// `scale` divides the paper's query counts; the default keeps each
/// bench binary in the seconds range on one core. Override with the
/// RWDT_SCALE environment variable (smaller value = bigger corpus).
struct StudyCorpus {
  std::vector<core::SourceStudy> sources;
  core::SourceStudy dbpedia_britm;  // merged non-Wikidata sources
  core::SourceStudy wikidata;       // merged Wikidata sources
};

inline uint64_t ScaleFromEnv(uint64_t fallback) {
  const char* env = std::getenv("RWDT_SCALE");
  if (env == nullptr) return fallback;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

inline StudyCorpus RunFullStudy(uint64_t scale, uint64_t seed = 2022) {
  StudyCorpus corpus;
  corpus.dbpedia_britm.name = "DBpedia-BritM";
  corpus.wikidata.name = "Wikidata";
  for (const auto& profile : loggen::Table2Profiles(scale)) {
    std::fprintf(stderr, "  analyzing %-16s (%llu queries)...\n",
                 profile.name.c_str(),
                 static_cast<unsigned long long>(profile.total_queries));
    core::SourceStudy study = core::AnalyzeLog(profile, seed);
    if (profile.wikidata_like) {
      core::MergeSource(study, &corpus.wikidata);
    } else {
      core::MergeSource(study, &corpus.dbpedia_britm);
    }
    corpus.sources.push_back(std::move(study));
  }
  return corpus;
}

}  // namespace rwdt::bench

#endif  // RWDT_BENCH_STUDY_UTIL_H_
