#ifndef RWDT_BENCH_STUDY_UTIL_H_
#define RWDT_BENCH_STUDY_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <thread>

#include <unistd.h>

#include "common/build_info.h"
#include "common/json.h"
#include "core/log_study.h"
#include "engine/engine.h"
#include "loggen/sparql_gen.h"
#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace rwdt::bench {

/// The shared provenance block every BENCH_*.json carries: build info
/// (git sha + describe, compiler, build type), hardware threads, and
/// hostname. tools/bench_trajectory.py keys its per-metric series on
/// `provenance.build.git_commit`, so no bench hand-rolls this.
inline std::string ProvenanceJson() {
  char host[256] = "unknown";
  if (gethostname(host, sizeof(host) - 1) != 0) {
    std::snprintf(host, sizeof(host), "unknown");
  }
  host[sizeof(host) - 1] = '\0';
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.RawField("build", common::BuildInfo::Get().ToJson());
  w.UIntField("hw_threads", std::thread::hardware_concurrency());
  w.StringField("hostname", host);
  w.EndObject();
  return out;
}

/// Shared driver for the Table 2-8 / Figure 3 benchmarks: runs the full
/// log-study pipeline over the seventeen Table 2 source profiles on the
/// streaming engine.
///
/// `scale` divides the paper's query counts; the default keeps each
/// bench binary in the seconds range. Override with the RWDT_SCALE
/// environment variable (smaller value = bigger corpus) and the worker
/// count with RWDT_THREADS (default: one per hardware thread; results
/// are bit-identical for any value).
struct StudyCorpus {
  std::vector<core::SourceStudy> sources;
  core::SourceStudy dbpedia_britm;  // merged non-Wikidata sources
  core::SourceStudy wikidata;       // merged Wikidata sources
  engine::MetricsSnapshot metrics;  // pipeline counters for the whole run
};

inline uint64_t ScaleFromEnv(uint64_t fallback) {
  const char* env = std::getenv("RWDT_SCALE");
  if (env == nullptr) return fallback;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

inline unsigned ThreadsFromEnv() {
  const char* env = std::getenv("RWDT_THREADS");
  if (env == nullptr) return 0;  // engine default: hardware threads
  return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

inline StudyCorpus RunFullStudy(uint64_t scale, uint64_t seed = 2022) {
  StudyCorpus corpus;
  corpus.dbpedia_britm.name = "DBpedia-BritM";
  corpus.wikidata.name = "Wikidata";
  engine::EngineOptions opts;
  opts.threads = ThreadsFromEnv();
  engine::Engine eng(opts);  // one engine: the cache warms across sources
  for (const auto& profile : loggen::Table2Profiles(scale)) {
    RWDT_LOG(INFO) << "analyzing " << profile.name << " ("
                   << profile.total_queries << " queries, " << eng.threads()
                   << " threads)";
    core::SourceStudy study = eng.AnalyzeLog(profile, seed);
    if (profile.wikidata_like) {
      core::MergeSource(study, &corpus.wikidata);
    } else {
      core::MergeSource(study, &corpus.dbpedia_britm);
    }
    corpus.sources.push_back(std::move(study));
  }
  corpus.metrics = eng.Snapshot();
  std::fprintf(stderr, "%s\n", corpus.metrics.ToText().c_str());
  return corpus;
}

/// The one place table benches write their MetricsSnapshot: appends this
/// run's metrics as a JSON-lines record next to the BENCH_*.json outputs
/// so perf is comparable across PRs. The bench name is escaped — no
/// bench hand-rolls this JSON itself.
inline void AppendBenchJson(const std::string& bench_name,
                            const engine::MetricsSnapshot& snap,
                            const char* path = "BENCH_study_metrics.jsonl") {
  FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    RWDT_LOG(ERROR) << "cannot append bench metrics to " << path;
    return;
  }
  // The build field lets a perf dashboard pin every record to the exact
  // commit and compiler that produced it.
  std::fprintf(out, "{\"bench\":\"%s\",\"build\":%s,\"metrics\":%s}\n",
               JsonEscape(bench_name).c_str(),
               common::BuildInfo::Get().ToJson().c_str(),
               snap.ToJson().c_str());
  std::fclose(out);
  RWDT_LOG(INFO) << "bench " << bench_name << ": metrics appended to "
                 << path;
}

/// Shared tracing hook for bench binaries: when the RWDT_TRACE
/// environment variable names a file, returns an installed collector
/// whose Chrome trace JSON is written there by `FinishBenchTrace`.
inline std::unique_ptr<obs::TraceCollector> MaybeStartBenchTrace() {
  const char* path = std::getenv("RWDT_TRACE");
  if (path == nullptr || path[0] == '\0') return nullptr;
  return std::make_unique<obs::TraceCollector>();
}

inline void FinishBenchTrace(std::unique_ptr<obs::TraceCollector> trace) {
  if (trace == nullptr) return;
  const char* path = std::getenv("RWDT_TRACE");
  if (path == nullptr) return;
  const Status st = trace->WriteChromeJson(path);
  if (!st.ok()) {
    RWDT_LOG(ERROR) << "trace export failed: " << st.message();
    return;
  }
  RWDT_LOG(INFO) << "trace: " << trace->events_recorded() << " spans from "
                 << trace->threads_seen() << " threads ("
                 << trace->events_dropped() << " dropped) written to "
                 << path << " — open in Perfetto / chrome://tracing";
}

/// Shared self-profiling hook for bench binaries: when RWDT_PROFILE is
/// set (a path, or "1" for `default_path`), starts a sampling CPU
/// capture whose collapsed stacks land next to the bench's JSON report.
/// RWDT_PROFILE_HZ overrides the 99 Hz default.
inline std::unique_ptr<obs::ScopedSelfProfile> MaybeStartBenchProfile(
    const char* default_path = "profile.collapsed") {
  return obs::MaybeStartEnvProfile(default_path);
}

inline void FinishBenchProfile(
    std::unique_ptr<obs::ScopedSelfProfile> profile) {
  if (profile == nullptr) return;
  const Status st = profile->Finish();
  if (!st.ok()) {
    RWDT_LOG(ERROR) << "profile export failed: " << st.message();
  }
}

}  // namespace rwdt::bench

#endif  // RWDT_BENCH_STUDY_UTIL_H_
