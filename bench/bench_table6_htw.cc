// Reproduces Table 6: hypertree width and free-connex acyclicity of the
// conjunctive (CQ) and CQ+F queries in the DBpedia-BritM logs,
// cumulative over htw <= 1, 2, 3.

#include <cstdio>

#include "common/table.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  const uint64_t scale = bench::ScaleFromEnv(20000);
  std::printf(
      "=== Table 6: hypertree width / free-connex acyclicity, "
      "DBpedia-BritM ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  auto emit = [&](const char* title, bool cq_only) {
    const core::LogAggregates& v = corpus.dbpedia_britm.valid_agg;
    const core::LogAggregates& u = corpus.dbpedia_britm.unique_agg;
    const uint64_t tv = cq_only ? v.cq : v.cq_f;
    const uint64_t tu = cq_only ? u.cq : u.cq_f;
    AsciiTable table({title, "AbsoluteV", "RelativeV", "AbsoluteU",
                      "RelativeU"});
    auto row = [&](const std::string& name, uint64_t av, uint64_t au) {
      table.AddRow({name, WithThousands(av), Percent(av, tv),
                    WithThousands(au), Percent(au, tu)});
    };
    row("FCA", cq_only ? v.cq_fca : v.cqf_fca,
        cq_only ? u.cq_fca : u.cqf_fca);
    row("htw <= 1", cq_only ? v.cq_htw1 : v.cqf_htw1,
        cq_only ? u.cq_htw1 : u.cqf_htw1);
    row("htw <= 2", cq_only ? v.cq_htw2 : v.cqf_htw2,
        cq_only ? u.cq_htw2 : u.cqf_htw2);
    row("htw <= 3", cq_only ? v.cq_htw3 : v.cqf_htw3,
        cq_only ? u.cq_htw3 : u.cqf_htw3);
    table.AddSeparator();
    row("Total", tv, tu);
    std::printf("%s", table.Render().c_str());
  };
  emit("CQ", true);
  std::printf("\n");
  emit("CQ+F", false);
  std::printf(
      "\nPaper reference: CQ — FCA 96.14%% (93.00%%), htw<=1 96.61%% "
      "(94.08%%),\nhtw<=2 100%%; CQ+F — FCA 93.98%% (91.19%%), htw<=1 "
      "96.63%% (95.56%%),\nhtw<=2 100%%. Shape to hold: almost everything "
      "is acyclic and even\nfree-connex; width 2 already covers the "
      "whole corpus.\n");
  bench::AppendBenchJson("table6_htw", corpus.metrics);
  return 0;
}
