// Reproduces Table 3: use of individual SPARQL features, split into
// DBpedia-BritM and Wikidata groups, Valid (V) and Unique (U).

#include <cstdio>

#include "common/table.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  const uint64_t scale = bench::ScaleFromEnv(20000);
  std::printf("=== Table 3: use of individual features ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  AsciiTable table({"SPARQL operator", "DBp AbsV", "DBp RelV", "DBp RelU",
                    "Wiki AbsV", "Wiki RelV", "Wiki RelU"});
  auto count = [](const core::LogAggregates& agg, sparql::Feature f) {
    auto it = agg.feature_counts.find(f);
    return it == agg.feature_counts.end() ? uint64_t{0} : it->second;
  };
  const core::LogAggregates& dv = corpus.dbpedia_britm.valid_agg;
  const core::LogAggregates& du = corpus.dbpedia_britm.unique_agg;
  const core::LogAggregates& wv = corpus.wikidata.valid_agg;
  const core::LogAggregates& wu = corpus.wikidata.unique_agg;
  for (sparql::Feature f : sparql::AllFeatures()) {
    table.AddRow({sparql::FeatureName(f), WithThousands(count(dv, f)),
                  Percent(count(dv, f), dv.select_ask_construct, true),
                  Percent(count(du, f), du.select_ask_construct, true),
                  WithThousands(count(wv, f)),
                  Percent(count(wv, f), wv.select_ask_construct, true),
                  Percent(count(wu, f), wu.select_ask_construct, true)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper reference highlights (RelV): DBpedia-BritM Filter 46.17%%,"
      " And 40.22%%,\nOptional 33.37%%, Union 26.40%%, paths 0.44%%;"
      " Wikidata Values 31.96%%, And 35.74%%,\npaths 24.03%%, Service"
      " 8.39%%, Filter 17.80%%. The group contrast (paths and\nService"
      " prominent only in Wikidata, Filter/Optional/Union much heavier"
      " in\nDBpedia-BritM) is the shape to compare.\n");
  bench::AppendBenchJson("table3_features", corpus.metrics);
  return 0;
}
