// Ingest throughput bench (the ISSUE's acceptance scenario): write a
// large generated log with 20% fault injection to disk as raw text, then
// stream it back through rwdt::ingest in bounded-memory chunks. Reports
// line throughput, the Total-vs-Valid split, and the per-class error
// counts, and writes BENCH_ingest.json for the cross-PR perf trail.
//
//   $ ./build/bench/bench_ingest [num_lines] [threads]
//
// Defaults to 1,000,000 lines. RWDT_BENCH_JSON overrides the output
// path; the temporary log file is removed on exit. Observability:
// RWDT_TRACE=<file> records a Chrome/Perfetto trace, RWDT_PROGRESS=<ms>
// enables live progress logging at that interval, and RWDT_REPORT
// overrides where the final JSON run report is written (default
// BENCH_ingest_report.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "rwdt.h"
#include "study_util.h"

int main(int argc, char** argv) {
  using namespace rwdt;
  using Clock = std::chrono::steady_clock;

  const uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 4;

  loggen::SourceProfile profile = loggen::ExampleProfile(n);
  profile.name = "bench-ingest";
  auto entries = loggen::GenerateLog(profile, 2022);

  loggen::CorruptionOptions copts;  // default rate = 0.2
  const auto summary = loggen::CorruptLog(&entries, 7, copts);

  const std::string log_path = "BENCH_ingest.log.tmp";
  uint64_t log_bytes = 0;
  {
    std::ofstream out(log_path, std::ios::binary);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
      return 1;
    }
    loggen::WriteLogText(entries, out);
    out.flush();
    log_bytes = static_cast<uint64_t>(out.tellp());
  }
  std::printf("log: %zu lines (%.1f MiB), %llu corrupted (%.1f%%)\n\n",
              entries.size(), log_bytes / (1024.0 * 1024.0),
              static_cast<unsigned long long>(summary.corrupted),
              100.0 * static_cast<double>(summary.corrupted) /
                  static_cast<double>(entries.size()));
  entries.clear();
  entries.shrink_to_fit();  // the stream is the only copy from here on

  auto trace = bench::MaybeStartBenchTrace();

  ingest::IngestOptions opts;
  opts.source_name = profile.name;
  opts.wikidata_like = profile.wikidata_like;
  opts.engine.threads = threads;
  const char* progress_env = std::getenv("RWDT_PROGRESS");
  if (progress_env != nullptr) {
    opts.progress.interval_ms =
        static_cast<uint32_t>(std::strtoul(progress_env, nullptr, 10));
  }
  const char* report_env = std::getenv("RWDT_REPORT");
  opts.progress.report_path =
      report_env != nullptr ? report_env : "BENCH_ingest_report.json";

  const auto t0 = Clock::now();
  auto r = ingest::IngestFile(log_path, opts);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::remove(log_path.c_str());
  if (!r.ok()) {
    RWDT_LOG(ERROR) << "ingest failed: " << r.error_message();
    return 1;
  }
  const ingest::IngestReport& report = r.value();

  const double lines_per_sec = report.lines_read / (ms / 1000.0);
  const double mib_per_sec =
      report.bytes_read / (1024.0 * 1024.0) / (ms / 1000.0);
  std::printf("ingest: %.1f ms, %s lines/s, %.1f MiB/s (threads=%u)\n\n",
              ms,
              WithThousands(static_cast<uint64_t>(lines_per_sec)).c_str(),
              mib_per_sec, threads);

  AsciiTable table({"Row", "Queries", "Rel"});
  table.AddRow({"Total", WithThousands(report.study.total), "100.0%"});
  table.AddRow({"Valid", WithThousands(report.study.valid),
                Percent(report.study.valid, report.study.total)});
  table.AddRow({"Unique", WithThousands(report.study.unique),
                Percent(report.study.unique, report.study.total)});
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    if (report.study.errors[c] == 0) continue;
    table.AddRow({std::string("  ") + ErrorClassName(ErrorClass(c)),
                  WithThousands(report.study.errors[c]),
                  Percent(report.study.errors[c], report.study.total)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%s\n", report.metrics.ToText().c_str());

  const char* json_env = std::getenv("RWDT_BENCH_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_ingest.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench\":\"ingest\",\"build\":%s,\"corrupted\":%llu,"
               "\"threads\":%u,"
               "\"wall_ms\":%.3f,\"lines_per_sec\":%.0f,\"report\":%s}\n",
               rwdt::common::BuildInfo::Get().ToJson().c_str(),
               static_cast<unsigned long long>(summary.corrupted), threads,
               ms, lines_per_sec, report.ToJson().c_str());
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  bench::FinishBenchTrace(std::move(trace));
  return 0;
}
