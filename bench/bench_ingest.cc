// Ingest throughput bench (the ISSUE's acceptance scenario): write a
// large generated log with 20% fault injection to disk as raw text,
// then stream it back through rwdt::ingest in bounded-memory chunks —
// once per reader implementation (legacy istream/getline baseline, then
// the zero-copy block pipeline), each on a fresh engine so neither run
// warms the other's cache. Reports per-reader throughput, the speedup,
// the Total-vs-Valid split, and per-class error counts, and writes
// BENCH_ingest.json for the cross-PR perf trail.
//
//   $ ./build/bench/bench_ingest [num_lines] [threads]
//
// Defaults to 1,000,000 lines and one thread (the single-thread number
// is the gated one; scale threads explicitly to measure parallelism).
// RWDT_BENCH_ENTRIES overrides the default line count when no argv is
// given — CI shrinks the run with it. RWDT_BENCH_JSON overrides the
// output path; the temporary log file is removed on exit.
// Observability: RWDT_TRACE=<file> records a Chrome/Perfetto trace,
// RWDT_PROGRESS=<ms> enables live progress logging at that interval,
// and RWDT_REPORT overrides where the final JSON run report is written
// (default BENCH_ingest_report.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "rwdt.h"
#include "study_util.h"

namespace {

struct ReaderRun {
  rwdt::ingest::IngestReport report;
  double wall_ms = 0;
  double queries_per_sec = 0;
  double bytes_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rwdt;
  using Clock = std::chrono::steady_clock;

  const char* entries_env = std::getenv("RWDT_BENCH_ENTRIES");
  const uint64_t default_n =
      entries_env != nullptr ? std::strtoull(entries_env, nullptr, 10)
                             : 1000000;
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : default_n;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 1;

  loggen::SourceProfile profile = loggen::ExampleProfile(n);
  profile.name = "bench-ingest";
  // Valid/Unique ratio of the generated log. The default (2.0) is far
  // more distinct-heavy than the paper's organic or robotic traffic
  // (Valid/Unique ~ 4-27); raise it to measure the duplicate hot path,
  // where throughput is bounded by scan+hash+dedup rather than parsing.
  const char* dup_env = std::getenv("RWDT_BENCH_DUP_FACTOR");
  if (dup_env != nullptr) {
    profile.duplicate_factor = std::strtod(dup_env, nullptr);
  }
  auto entries = loggen::GenerateLog(profile, 2022);

  loggen::CorruptionOptions copts;  // default rate = 0.2
  // Corrupted lines are mostly distinct, so the fault rate directly
  // sets how much parse work a duplicate-heavy log still carries.
  const char* corrupt_env = std::getenv("RWDT_BENCH_CORRUPT_RATE");
  if (corrupt_env != nullptr) {
    copts.rate = std::strtod(corrupt_env, nullptr);
  }
  const auto summary = loggen::CorruptLog(&entries, 7, copts);

  const std::string log_path = "BENCH_ingest.log.tmp";
  uint64_t log_bytes = 0;
  {
    std::ofstream out(log_path, std::ios::binary);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
      return 1;
    }
    loggen::WriteLogText(entries, out);
    out.flush();
    log_bytes = static_cast<uint64_t>(out.tellp());
  }
  std::printf("log: %zu lines (%.1f MiB), %llu corrupted (%.1f%%)\n\n",
              entries.size(), log_bytes / (1024.0 * 1024.0),
              static_cast<unsigned long long>(summary.corrupted),
              100.0 * static_cast<double>(summary.corrupted) /
                  static_cast<double>(entries.size()));
  entries.clear();
  entries.shrink_to_fit();  // the stream is the only copy from here on

  auto trace = bench::MaybeStartBenchTrace();
  auto self_profile = bench::MaybeStartBenchProfile("profile.collapsed");

  ingest::IngestOptions opts;
  opts.source_name = profile.name;
  opts.wikidata_like = profile.wikidata_like;
  opts.engine.threads = threads;
  const char* progress_env = std::getenv("RWDT_PROGRESS");
  if (progress_env != nullptr) {
    opts.progress.interval_ms =
        static_cast<uint32_t>(std::strtoul(progress_env, nullptr, 10));
  }
  const char* report_env = std::getenv("RWDT_REPORT");
  opts.progress.report_path =
      report_env != nullptr ? report_env : "BENCH_ingest_report.json";

  // Legacy first so the block run — whose report the JSON keeps — is
  // last; each IngestFile builds a fresh engine, so the orders share
  // nothing but the page cache (which the legacy run warms for both).
  const ingest::ReaderKind kinds[2] = {ingest::ReaderKind::kLegacy,
                                       ingest::ReaderKind::kBlock};
  ReaderRun runs[2];
  for (int i = 0; i < 2; ++i) {
    opts.reader = kinds[i];
    const auto t0 = Clock::now();
    auto r = ingest::IngestFile(log_path, opts);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    if (!r.ok()) {
      RWDT_LOG(ERROR) << "ingest (" << ingest::ReaderKindName(kinds[i])
                      << ") failed: " << r.error_message();
      std::remove(log_path.c_str());
      return 1;
    }
    runs[i].report = std::move(r).value();
    runs[i].wall_ms = ms;
    runs[i].queries_per_sec = runs[i].report.study.total / (ms / 1000.0);
    runs[i].bytes_per_sec = runs[i].report.bytes_read / (ms / 1000.0);
    std::printf("ingest[%s]: %.1f ms, %s queries/s, %.1f MiB/s "
                "(threads=%u%s)\n",
                ingest::ReaderKindName(kinds[i]), ms,
                WithThousands(
                    static_cast<uint64_t>(runs[i].queries_per_sec))
                    .c_str(),
                runs[i].bytes_per_sec / (1024.0 * 1024.0), threads,
                runs[i].report.used_mmap ? ", mmap" : "");
  }
  std::remove(log_path.c_str());
  const double speedup =
      runs[1].wall_ms > 0 ? runs[0].wall_ms / runs[1].wall_ms : 0;
  std::printf("speedup block vs legacy: %.2fx\n\n", speedup);

  const ingest::IngestReport& report = runs[1].report;
  if (report.study != runs[0].report.study) {
    std::fprintf(stderr,
                 "FATAL: block and legacy readers disagree on the study\n");
    return 1;
  }

  AsciiTable table({"Row", "Queries", "Rel"});
  table.AddRow({"Total", WithThousands(report.study.total), "100.0%"});
  table.AddRow({"Valid", WithThousands(report.study.valid),
                Percent(report.study.valid, report.study.total)});
  table.AddRow({"Unique", WithThousands(report.study.unique),
                Percent(report.study.unique, report.study.total)});
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    if (report.study.errors[c] == 0) continue;
    table.AddRow({std::string("  ") + ErrorClassName(ErrorClass(c)),
                  WithThousands(report.study.errors[c]),
                  Percent(report.study.errors[c], report.study.total)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%s\n", report.metrics.ToText().c_str());

  const char* json_env = std::getenv("RWDT_BENCH_JSON");
  const std::string path =
      json_env != nullptr ? json_env : "BENCH_ingest.json";
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench\":\"ingest\",\"provenance\":%s,\"corrupted\":%llu,"
               "\"threads\":%u,\"runs\":[",
               bench::ProvenanceJson().c_str(),
               static_cast<unsigned long long>(summary.corrupted),
               threads);
  for (int i = 0; i < 2; ++i) {
    std::fprintf(
        out,
        "%s{\"reader\":\"%s\",\"wall_ms\":%.3f,\"queries_per_sec\":%.0f,"
        "\"bytes_per_sec\":%.0f,\"used_mmap\":%s,\"blocks_read\":%llu,"
        "\"carry_stitches\":%llu}",
        i == 0 ? "" : ",", ingest::ReaderKindName(kinds[i]),
        runs[i].wall_ms, runs[i].queries_per_sec, runs[i].bytes_per_sec,
        runs[i].report.used_mmap ? "true" : "false",
        static_cast<unsigned long long>(runs[i].report.blocks_read),
        static_cast<unsigned long long>(runs[i].report.carry_stitches));
  }
  std::fprintf(out,
               "],\"speedup_block_vs_legacy\":%.3f,"
               "\"wall_ms\":%.3f,\"lines_per_sec\":%.0f,\"report\":%s}\n",
               speedup, runs[1].wall_ms,
               report.lines_read / (runs[1].wall_ms / 1000.0),
               report.ToJson().c_str());
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  bench::FinishBenchTrace(std::move(trace));
  bench::FinishBenchProfile(std::move(self_profile));
  return 0;
}
