// Reproduces the Section 4.2.1 determinization story: the family
// (a+b)*a(a+b)^k has minimal complete DFAs of size 2^(k+1) (unavoidable
// exponential blow-up from expressions to deterministic automata), its
// languages fail the Brüggemann-Klein & Wood test (no deterministic
// expression exists at all), while (a+b)*a is one-unambiguity-definable.

#include <cstdio>

#include "common/interner.h"
#include "common/table.h"
#include "regex/automaton.h"
#include "regex/bkw.h"
#include "regex/glushkov.h"
#include "regex/parser.h"

int main() {
  using namespace rwdt;
  using namespace rwdt::regex;
  std::printf(
      "=== Determinization blow-up: (a|b)*a(a|b)^k (Section 4.2.1) "
      "===\n");

  Interner dict;
  AsciiTable table({"k", "expr size", "Glushkov NFA", "min DFA",
                    "2^(k+1)", "deterministic expr?", "DRE-definable?"});
  for (int k = 0; k <= 10; ++k) {
    std::string text = "(a|b)*a";
    for (int i = 0; i < k; ++i) text += "(a|b)";
    auto parsed = ParseRegex(text, &dict);
    if (!parsed.ok()) return 1;
    const RegexPtr e = parsed.value();
    const Nfa nfa = ToNfa(e);
    const size_t min_size = MinimalDfaSize(ToDfa(e));
    table.AddRow({std::to_string(k), std::to_string(e->Size()),
                  std::to_string(nfa.NumStates()),
                  WithThousands(min_size),
                  WithThousands(1ull << (k + 1)),
                  IsDeterministic(e) ? "yes" : "no",
                  k == 0 ? (IsDreDefinable(e) ? "yes" : "no")
                         : (k <= 6 ? (IsDreDefinable(e) ? "yes" : "no")
                                   : "(skipped)")});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nShape to hold: the minimal DFA has exactly 2^(k+1) states while "
      "the\nexpression grows linearly; for k >= 1 the language is not "
      "definable by any\ndeterministic regular expression "
      "(Brüggemann-Klein & Wood), and for k = 0\nit is (b*a(b*a)* is an "
      "equivalent deterministic expression).\n");
  return 0;
}
