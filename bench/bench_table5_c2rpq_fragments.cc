// Reproduces Table 5: operator sets including property paths (2RPQs) in
// the Wikidata logs — the C2RPQ+F fragment.

#include <cstdio>

#include "common/table.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  const uint64_t scale = bench::ScaleFromEnv(20000);
  std::printf(
      "=== Table 5: And/Filter/2RPQ operator sets, Wikidata ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  const core::LogAggregates& v = corpus.wikidata.valid_agg;
  const core::LogAggregates& u = corpus.wikidata.unique_agg;
  AsciiTable table({"Operator Set", "AbsoluteV", "RelativeV", "AbsoluteU",
                    "RelativeU"});
  auto row = [&](const std::string& name, uint64_t av, uint64_t au) {
    table.AddRow({name, WithThousands(av),
                  Percent(av, v.select_ask_construct, true),
                  WithThousands(au),
                  Percent(au, u.select_ask_construct, true)});
  };
  row("none", v.ops_none, u.ops_none);
  row("And", v.ops_and, u.ops_and);
  row("Filter", v.ops_filter, u.ops_filter);
  row("And, Filter", v.ops_and_filter, u.ops_and_filter);
  table.AddSeparator();
  row("CQ+F subtotal", v.cq_f, u.cq_f);
  table.AddSeparator();
  row("2RPQ", v.ops_rpq, u.ops_rpq);
  row("And, 2RPQ", v.ops_and_rpq, u.ops_and_rpq);
  row("Filter, 2RPQ", v.ops_filter_rpq, u.ops_filter_rpq);
  row("And, Filter, 2RPQ", v.ops_and_filter_rpq, u.ops_and_filter_rpq);
  table.AddSeparator();
  row("C2RPQ+F subtotal", v.c2rpq_f, u.c2rpq_f);
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper reference: CQ+F subtotal 19.85%% (11.68%%); C2RPQ+F "
      "subtotal 34.67%%\n(21.13%%). The shape to hold: CQ-like fragments "
      "are much smaller in Wikidata\nthan in DBpedia-BritM (Table 4), and "
      "adding 2RPQs roughly doubles coverage.\n");
  bench::AppendBenchJson("table5_c2rpq_fragments", corpus.metrics);
  return 0;
}
