// Reproduces the DTD corpus statistics of Sections 4.1-4.2.3 (Choi; Bex
// et al.): fraction of sequential (chain) expressions, of SOREs, of
// deterministic expressions, recursion, parse depth, and the RE(...)
// fragment histogram.

#include <cstdio>

#include "common/interner.h"
#include "common/table.h"
#include "core/studies.h"
#include "loggen/corpus_gen.h"

int main() {
  using namespace rwdt;
  std::printf("=== DTD corpus study (Sections 4.1-4.2.3) ===\n");

  Interner dict;
  loggen::DtdCorpusOptions options;
  options.num_dtds = 103;  // the Bex et al. corpus size
  const auto corpus = loggen::GenerateDtdCorpus(options, &dict, 2022);
  const core::DtdStudyResult r = core::RunDtdStudy(corpus, dict);

  AsciiTable table({"Metric", "Measured", "Paper reference"});
  table.AddRow({"DTDs", std::to_string(r.num_dtds), "103 (Bex et al.)"});
  table.AddRow({"content-model expressions",
                std::to_string(r.num_expressions), "-"});
  table.AddRow({"sequential (chain) expressions",
                Percent(r.chain_expressions, r.num_expressions),
                "> 92%"});
  table.AddRow({"single-occurrence (SOREs)",
                Percent(r.sores, r.num_expressions), "> 99% (over 99%)"});
  table.AddRow({"2-OREs", Percent(r.kore2, r.num_expressions), "-"});
  table.AddRow({"deterministic (one-unambiguous)",
                Percent(r.deterministic, r.num_expressions),
                "most; violations exist (Choi)"});
  table.AddRow({"recursive DTDs",
                std::to_string(r.recursive_dtds) + " / " +
                    std::to_string(r.num_dtds),
                "35 / 60 (Choi)"});
  table.AddRow({"max parse depth", std::to_string(r.max_parse_depth),
                "1..9 (Choi)"});
  size_t max_depth = 0;
  for (size_t d : r.nonrecursive_depths) max_depth = std::max(max_depth, d);
  table.AddRow({"max doc depth (non-recursive)",
                std::to_string(max_depth), "up to 20 (Choi)"});
  std::printf("%s", table.Render().c_str());

  std::printf("\nRE(...) fragment histogram of the chain expressions:\n");
  AsciiTable fragments({"Fragment", "Count"});
  size_t shown = 0;
  for (const auto& [sig, count] : r.fragment_histogram) {
    if (++shown > 12) break;
    fragments.AddRow({sig, WithThousands(count)});
  }
  std::printf("%s", fragments.Render().c_str());
  return 0;
}
