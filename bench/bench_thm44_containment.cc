// Reproduces the complexity landscape of Theorem 4.4 (containment for
// chain regular expression fragments): the PTIME fragments RE(a,a+) and
// RE(a,(+a)) scale polynomially via the specialized algorithms, while
// the coNP-complete fragment RE(a,a?) exhibits exponential scaling on
// the hard instances produced by the Appendix A reduction.

#include <benchmark/benchmark.h>

#include "common/interner.h"
#include "common/rng.h"
#include "regex/automaton.h"
#include "regex/chain_algorithms.h"
#include "regex/glushkov.h"
#include "regex/reduction.h"

namespace {

using namespace rwdt;
using namespace rwdt::regex;

/// RE(a,a+) instances: long unary-run chains.
std::pair<RegexPtr, RegexPtr> MakeUnaryRunInstance(size_t n) {
  Rng rng(n * 7 + 1);
  std::vector<RegexPtr> lhs, rhs;
  for (size_t i = 0; i < n; ++i) {
    const SymbolId sym = static_cast<SymbolId>(i % 5);
    // lhs run: a a+ (>=2); rhs run: a+ (>=1) -- contained per run.
    lhs.push_back(Regex::Symbol(sym));
    lhs.push_back(Regex::Plus(Regex::Symbol(sym)));
    rhs.push_back(Regex::Plus(Regex::Symbol(sym)));
    // Separator symbol so adjacent runs stay distinct.
    const SymbolId sep = static_cast<SymbolId>(5 + (i % 3));
    lhs.push_back(Regex::Symbol(sep));
    rhs.push_back(Regex::Symbol(sep));
  }
  return {Regex::Concat(std::move(lhs)), Regex::Concat(std::move(rhs))};
}

void BM_ContainmentReAPlus_Ptime(benchmark::State& state) {
  const auto [lhs, rhs] = MakeUnaryRunInstance(state.range(0));
  for (auto _ : state) {
    auto decision = DecideContainment(lhs, rhs);
    if (decision.algorithm != ContainmentAlgorithm::kUnaryRuns ||
        !decision.contained) {
      state.SkipWithError("unexpected result");
    }
    benchmark::DoNotOptimize(decision);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ContainmentReAPlus_Ptime)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity(benchmark::oN);

/// RE(a,(+a)) instances: fixed-length products with widening sets.
void BM_ContainmentFixedLength_Ptime(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<RegexPtr> lhs, rhs;
  for (size_t i = 0; i < n; ++i) {
    const SymbolId a = static_cast<SymbolId>(2 * i);
    const SymbolId b = static_cast<SymbolId>(2 * i + 1);
    lhs.push_back(Regex::Symbol(a));
    rhs.push_back(Regex::Union(Regex::Symbol(a), Regex::Symbol(b)));
  }
  const RegexPtr l = Regex::Concat(std::move(lhs));
  const RegexPtr r = Regex::Concat(std::move(rhs));
  for (auto _ : state) {
    auto decision = DecideContainment(l, r);
    if (decision.algorithm != ContainmentAlgorithm::kFixedLength ||
        !decision.contained) {
      state.SkipWithError("unexpected result");
    }
    benchmark::DoNotOptimize(decision);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ContainmentFixedLength_Ptime)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity(benchmark::oN);

/// Hard RE(a,a?) instances from the Appendix A validity reduction:
/// the generic automata-based decision procedure pays an exponential
/// price as the variable count grows.
void BM_ContainmentReAOpt_Hard(benchmark::State& state) {
  const size_t num_vars = static_cast<size_t>(state.range(0));
  Interner dict;
  DnfFormula f;
  f.num_vars = num_vars;
  // x1 ∨ ¬x1 ∨ (x2 ∧ x3 ...) : valid, but the decision procedure still
  // explores the assignment space.
  f.clauses.push_back({1});
  f.clauses.push_back({-1});
  DnfFormula::Clause big;
  for (size_t i = 2; i <= num_vars; ++i) big.push_back(static_cast<int>(i));
  f.clauses.push_back(big);
  const auto inst = EncodeValidityAsContainment(f, &dict);
  for (auto _ : state) {
    const bool contained = IsContained(ToDfa(inst.lhs), ToDfa(inst.rhs));
    if (!contained) state.SkipWithError("reduction says valid");
    benchmark::DoNotOptimize(contained);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ContainmentReAOpt_Hard)->DenseRange(2, 9, 1);

}  // namespace

BENCHMARK_MAIN();
