// Reproduces the Section 9.6 path-semantics story: evaluating the
// Table 8 path types under walk (SPARQL default), simple-path, and trail
// semantics. Walk semantics always decides quickly; the backtracking
// semantics stay fast on simple transitive expressions (C_tract /
// T_tract members) and blow their budget on adversarial instances.

#include <cstdio>

#include <chrono>

#include "common/interner.h"
#include "common/rng.h"
#include "common/table.h"
#include "graph/generators.h"
#include "paths/analysis.h"
#include "paths/semantics.h"

int main() {
  using namespace rwdt;
  using paths::PathSemantics;
  std::printf("=== Path semantics on Table 8 types (Section 9.6) ===\n");

  Interner dict;
  Rng rng(2022);
  // A dense-ish link graph: entity-to-entity edges under predicates
  // p0..p3.
  graph::TripleStore store;
  const size_t n = 400;
  std::vector<SymbolId> nodes;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(dict.Intern("n" + std::to_string(i)));
  }
  std::vector<SymbolId> preds;
  for (int p = 0; p < 4; ++p) {
    preds.push_back(dict.Intern("p" + std::to_string(p)));
  }
  for (size_t i = 0; i < 4 * n; ++i) {
    store.Add(nodes[rng.NextBelow(n)], preds[rng.NextBelow(4)],
              nodes[rng.NextBelow(n)]);
  }

  const std::vector<std::string> exprs = {"p0*",       "p0/p1*", "p0+",
                                          "p0/p1*/p2", "p0*/p1*", "p0/p1",
                                          "(p0|p1)*"};
  AsciiTable table({"path", "STE?", "walk us", "simple-path us",
                    "decided", "trail us", "decided"});
  for (const auto& text : exprs) {
    auto parsed = paths::ParsePath(text, &dict);
    if (!parsed.ok()) return 1;
    const auto& path = *parsed.value();
    double us[3] = {0, 0, 0};
    int decided[3] = {0, 0, 0};
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      const SymbolId src = nodes[rng.NextBelow(n)];
      const SymbolId dst = nodes[rng.NextBelow(n)];
      const PathSemantics semantics[3] = {PathSemantics::kWalk,
                                          PathSemantics::kSimplePath,
                                          PathSemantics::kTrail};
      for (int s = 0; s < 3; ++s) {
        const auto start = std::chrono::steady_clock::now();
        const auto match =
            paths::MatchPath(store, path, src, dst, semantics[s],
                             /*budget=*/200000);
        const auto stop = std::chrono::steady_clock::now();
        us[s] += std::chrono::duration<double, std::micro>(stop - start)
                     .count();
        decided[s] += match.decided;
      }
    }
    table.AddRow({text,
                  paths::IsSimpleTransitiveExpression(path) ? "yes" : "no",
                  Fixed(us[0] / trials, 1), Fixed(us[1] / trials, 1),
                  std::to_string(decided[1]) + "/" + std::to_string(trials),
                  Fixed(us[2] / trials, 1),
                  std::to_string(decided[2]) + "/" +
                      std::to_string(trials)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nShape to hold: walk semantics is uniformly cheap (PTIME); the\n"
      "backtracking semantics decide all queries here but pay visibly "
      "more on\nnon-STE types like p0*/p1* — the fragment boundary the "
      "Bagan-Bonifati-Groz\nand Martens-Trautner trichotomies draw.\n");
  return 0;
}
