// Reproduces the Grijzenhout-Marx XML quality study (Section 3.1):
// % well-formed documents and the error-category distribution.

#include <algorithm>
#include <cstdio>

#include "common/interner.h"
#include "common/table.h"
#include "core/studies.h"
#include "loggen/corpus_gen.h"

int main() {
  using namespace rwdt;
  std::printf("=== XML quality study (Grijzenhout-Marx) ===\n");

  Interner dict;
  loggen::XmlCorpusOptions options;
  options.num_documents = 6000;
  const auto corpus = loggen::GenerateXmlCorpus(options, &dict, 2022);
  const core::XmlQualityResult r = core::RunXmlQualityStudy(corpus);

  std::printf("documents: %zu, well-formed: %zu (%s)\n", r.documents,
              r.well_formed,
              Percent(r.well_formed, r.documents).c_str());
  std::printf("paper reference: 85%% of 180k crawled XML files\n\n");

  uint64_t errors = 0;
  for (const auto& [cat, count] : r.error_histogram) {
    (void)cat;
    errors += count;
  }
  AsciiTable table({"Error category", "Count", "Share of errors"});
  // Sort by count descending.
  std::vector<std::pair<uint64_t, tree::XmlErrorCategory>> sorted;
  for (const auto& [cat, count] : r.error_histogram) {
    sorted.emplace_back(count, cat);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  uint64_t top3 = 0;
  int rank = 0;
  for (const auto& [count, cat] : sorted) {
    table.AddRow({tree::XmlErrorCategoryName(cat), WithThousands(count),
                  Percent(count, errors)});
    if (rank++ < 3) top3 += count;
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\ntop-3 categories cover %s of all errors (paper: tag mismatch + "
      "premature\nend + improper UTF-8 = 79.9%%; 9 categories cover "
      "99%%).\n",
      Percent(top3, errors).c_str());
  return 0;
}
