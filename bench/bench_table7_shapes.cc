// Reproduces Table 7: cumulative shape analysis of the canonical graphs
// of graph-CQ+F queries in the DBpedia-BritM logs, with constants (top)
// and without (bottom).

#include <cstdio>

#include "common/table.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  using hypergraph::GraphShape;
  const uint64_t scale = bench::ScaleFromEnv(20000);
  std::printf(
      "=== Table 7: cumulative shapes of graph-CQ+F queries, "
      "DBpedia-BritM ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  const GraphShape order[] = {
      GraphShape::kNoEdge,     GraphShape::kSingleEdge,
      GraphShape::kChain,      GraphShape::kStar,
      GraphShape::kTree,       GraphShape::kForest,
      GraphShape::kTreewidth2, GraphShape::kTreewidth3,
      GraphShape::kOther};

  auto emit = [&](const char* title, bool with_constants) {
    const core::LogAggregates& v = corpus.dbpedia_britm.valid_agg;
    const core::LogAggregates& u = corpus.dbpedia_britm.unique_agg;
    const auto& mv =
        with_constants ? v.shapes_with_constants : v.shapes_without_constants;
    const auto& mu =
        with_constants ? u.shapes_with_constants : u.shapes_without_constants;
    AsciiTable table(
        {title, "AbsoluteV", "RelativeV", "AbsoluteU", "RelativeU"});
    uint64_t cum_v = 0, cum_u = 0;
    for (GraphShape shape : order) {
      cum_v += mv.count(shape) ? mv.at(shape) : 0;
      cum_u += mu.count(shape) ? mu.at(shape) : 0;
      if (shape == GraphShape::kOther) continue;  // folded into total
      table.AddRow({hypergraph::GraphShapeName(shape),
                    WithThousands(cum_v), Percent(cum_v, v.graph_cqf),
                    WithThousands(cum_u), Percent(cum_u, u.graph_cqf)});
    }
    table.AddSeparator();
    table.AddRow({"total", WithThousands(v.graph_cqf), "100.00%",
                  WithThousands(u.graph_cqf), "100.00%"});
    std::printf("%s", table.Render().c_str());
  };
  emit("Shape (with constants)", true);
  std::printf("\n");
  emit("Shape (without constants)", false);
  std::printf(
      "\nPaper reference (with constants): <=1 edge 87.56%% (83.05%%), "
      "chain 96.68%%\n(96.72%%), star 98.82%% (99.02%%), tree 99.07%%, "
      "tw<=2 100%%. Without\nconstants, 'no edge' alone jumps to 86.75%% "
      "(84.07%%). Shape to hold: chains\nand stars dominate, constants "
      "carry most of the structure.\n");
  bench::AppendBenchJson("table7_shapes", corpus.metrics);
  return 0;
}
