// Classifier-dispatched execution vs the naive evaluator (ROADMAP item
// 1: make the classifier actionable). For each certified fragment the
// planner specializes — acyclic CQ (Yannakakis), bounded-htw CQ+F
// (decomposition-guided hash joins), simple transitive property paths
// (NFA-product reachability), well-designed OPTIONAL (hash left joins)
// — this bench runs the same query through `sparql::Evaluator` and
// through `exec::Executor`, checks the bags agree, and reports the
// speedup to BENCH_exec.json.
//
// RWDT_SCALE divides the store size (bigger value = smaller run; CI
// smoke uses RWDT_SCALE=6). When RWDT_EXEC_GATE is set the binary exits
// non-zero unless every classifier-picked plan is at least as fast as
// the naive evaluator — the regression gate CI runs on capable machines.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/table.h"
#include "exec/planner.h"
#include "graph/generators.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "study_util.h"

namespace {

using namespace rwdt;

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

struct ClassResult {
  std::string name;
  std::string query;
  std::string strategy;
  size_t rows = 0;
  double naive_seconds = 0;
  double exec_seconds = 0;
  double speedup = 0;
  bool agree = false;
};

std::vector<sparql::Binding> Sorted(std::vector<sparql::Binding> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

int main() {
  const uint64_t scale = bench::ScaleFromEnv(1);
  auto trace = bench::MaybeStartBenchTrace();
  auto self_profile = bench::MaybeStartBenchProfile("profile.collapsed");
  std::printf("=== Classifier-dispatched execution vs naive (scale %llu) "
              "===\n",
              static_cast<unsigned long long>(scale));

  // One synthetic store stressing every specialized fragment: dense
  // random layers on p0..p2 (joins explode naively), plus p3 arranged in
  // disjoint chains (transitive closure stays linear per chain).
  Interner dict;
  Rng rng(2022);
  graph::TripleStore store;
  const uint64_t n = std::max<uint64_t>(120, 2400 / scale);
  const uint64_t edges = std::max<uint64_t>(240, 3000 / scale);
  for (const char* pred : {"p0", "p1", "p2"}) {
    const SymbolId p = dict.Intern(pred);
    for (uint64_t i = 0; i < edges; ++i) {
      store.Add(dict.Intern("n" + std::to_string(rng.NextBelow(n))), p,
                dict.Intern("n" + std::to_string(rng.NextBelow(n))));
    }
  }
  const SymbolId p3 = dict.Intern("p3");
  for (uint64_t i = 0; i + 1 < n; ++i) {
    if ((i + 1) % 12 == 0) continue;  // break into chains of 12
    store.Add(dict.Intern("n" + std::to_string(i)), p3,
              dict.Intern("n" + std::to_string(i + 1)));
  }

  const struct {
    const char* name;
    const char* text;
    const char* want_strategy;
  } classes[] = {
      {"acyclic_cq",
       "SELECT * WHERE { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d }", "yannakakis"},
      {"cyclic_htw2",
       "SELECT * WHERE { ?x p0 ?y . ?y p1 ?z . ?z p2 ?x }",
       "htw_join_order"},
      // A C2RPQ: the naive evaluator nested-loops the path's full pair
      // set against the scan; the executor hash-joins them.
      {"ste_path", "SELECT * WHERE { ?x p3* ?y . ?y p1 ?z }",
       "nfa_path_product"},
      // Bare path scan: both sides enumerate the same pair set, so this
      // measures the NFA product against the recursive pair algebra.
      {"ste_path_scan", "SELECT * WHERE { ?x p0/p3* ?y }",
       "nfa_path_product"},
      {"wd_optional",
       "SELECT * WHERE { ?x p0 ?y OPTIONAL { ?y p1 ?z } }",
       "pattern_tree"},
  };

  // The naive side joins path closures by nested loop; give both sides
  // enough step budget that the comparison measures time, not limits.
  sparql::EvalLimits limits;
  limits.max_steps = 1ull << 33;
  exec::ExecOptions exec_options;
  exec_options.limits = limits;
  sparql::Evaluator eval(store, &dict, limits);
  exec::Executor executor(store, &dict, exec_options);
  std::vector<ClassResult> results;
  bool all_ok = true;

  for (const auto& cls : classes) {
    ClassResult r;
    r.name = cls.name;
    r.query = cls.text;
    auto q = sparql::ParseSparql(cls.text, &dict);
    if (!q.ok()) {
      std::fprintf(stderr, "parse failed: %s\n", cls.text);
      return 1;
    }

    auto t0 = std::chrono::steady_clock::now();
    auto naive = eval.EvalQuery(q.value());
    r.naive_seconds = Seconds(std::chrono::steady_clock::now() - t0);
    if (!naive.ok()) {
      std::fprintf(stderr, "naive eval failed: %s\n",
                   naive.status().ToString().c_str());
      return 1;
    }

    // Planning (classification included) is part of the measured cost:
    // the comparison is end-to-end "what a caller pays".
    t0 = std::chrono::steady_clock::now();
    auto plan = executor.MakePlan(q.value());
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto fast = executor.Execute(plan.value());
    r.exec_seconds = Seconds(std::chrono::steady_clock::now() - t0);
    if (!fast.ok()) {
      std::fprintf(stderr, "exec failed: %s\n",
                   fast.status().ToString().c_str());
      return 1;
    }

    r.strategy = exec::StrategyName(plan.value().strategy);
    r.rows = fast.value().size();
    r.agree = Sorted(naive.value()) == Sorted(fast.value());
    r.speedup = r.exec_seconds > 0 ? r.naive_seconds / r.exec_seconds : 0;
    if (r.strategy != cls.want_strategy) {
      std::fprintf(stderr, "%s: expected strategy %s, planner picked %s\n",
                   cls.name, cls.want_strategy, r.strategy.c_str());
      all_ok = false;
    }
    if (!r.agree) {
      std::fprintf(stderr, "%s: executor and evaluator bags DISAGREE\n",
                   cls.name);
      all_ok = false;
    }
    results.push_back(std::move(r));
  }

  AsciiTable table(
      {"Class", "Strategy", "Rows", "Naive (ms)", "Exec (ms)", "Speedup"});
  for (const auto& r : results) {
    char naive_ms[32], exec_ms[32], speedup[32];
    std::snprintf(naive_ms, sizeof(naive_ms), "%.2f",
                  r.naive_seconds * 1e3);
    std::snprintf(exec_ms, sizeof(exec_ms), "%.2f", r.exec_seconds * 1e3);
    std::snprintf(speedup, sizeof(speedup), "%.1fx", r.speedup);
    table.AddRow({r.name, r.strategy, WithThousands(r.rows), naive_ms,
                  exec_ms, speedup});
  }
  std::printf("%s", table.Render().c_str());

  // BENCH_exec.json: one self-contained record for the perf dashboard.
  {
    std::string out;
    JsonWriter w(&out);
    w.BeginObject();
    w.StringField("bench", "bench_exec");
    w.Key("provenance");
    w.Raw(bench::ProvenanceJson());
    w.UIntField("scale", scale);
    w.UIntField("store_triples", store.size());
    w.Key("classes");
    w.BeginArray();
    for (const auto& r : results) {
      w.BeginObject();
      w.StringField("class", r.name);
      w.StringField("query", r.query);
      w.StringField("strategy", r.strategy);
      w.UIntField("rows", r.rows);
      w.Key("naive_seconds");
      w.Double(r.naive_seconds);
      w.Key("exec_seconds");
      w.Double(r.exec_seconds);
      w.Key("speedup");
      w.Double(r.speedup);
      w.BoolField("agree", r.agree);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    FILE* f = std::fopen("BENCH_exec.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "%s\n", out.c_str());
      std::fclose(f);
      std::printf("\nwrote BENCH_exec.json\n");
    }
  }

  // Regression gate (CI sets RWDT_EXEC_GATE on capable runners): every
  // classifier-picked plan must be at least as fast as the naive
  // evaluator, and the bags must agree.
  if (std::getenv("RWDT_EXEC_GATE") != nullptr) {
    for (const auto& r : results) {
      if (r.speedup < 1.0) {
        std::fprintf(stderr,
                     "GATE: %s slower than naive (%.2fx < 1.0x)\n",
                     r.name.c_str(), r.speedup);
        all_ok = false;
      }
    }
  }

  bench::FinishBenchTrace(std::move(trace));
  bench::FinishBenchProfile(std::move(self_profile));
  return all_ok ? 0 : 1;
}
