// Reproduces Figure 3: the distribution of the number of triple patterns
// per query (buckets 0..10 and 11+), for Valid and Unique queries of
// every source.

#include <cstdio>

#include "common/table.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  const uint64_t scale = bench::ScaleFromEnv(20000);
  std::printf(
      "=== Figure 3: #triple patterns per query, Valid%% (Unique%%) ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  std::vector<std::string> header = {"Source"};
  for (int b = 0; b <= 10; ++b) header.push_back(std::to_string(b));
  header.push_back("11+");
  AsciiTable table(header);

  for (const auto& s : corpus.sources) {
    std::vector<std::string> row = {s.name};
    for (size_t b = 0; b < 12; ++b) {
      const std::string v = Percent(s.valid_agg.triple_histogram[b],
                                    s.valid_agg.select_ask_construct);
      const std::string u = Percent(s.unique_agg.triple_histogram[b],
                                    s.unique_agg.select_ask_construct);
      row.push_back(v + " (" + u + ")");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Render().c_str());

  // Headline aggregates the paper calls out in Section 9.3.
  uint64_t le1_v = 0, le2_v = 0, all_v = 0, le1_u = 0, le2_u = 0,
           all_u = 0;
  for (const auto* group : {&corpus.dbpedia_britm, &corpus.wikidata}) {
    for (size_t b = 0; b < 12; ++b) {
      const uint64_t v = group->valid_agg.triple_histogram[b];
      const uint64_t u = group->unique_agg.triple_histogram[b];
      if (b <= 1) {
        le1_v += v;
        le1_u += u;
      }
      if (b <= 2) {
        le2_v += v;
        le2_u += u;
      }
      all_v += v;
      all_u += u;
    }
  }
  std::printf(
      "\nMeasured: at most one triple pattern: %s (%s); at most two: "
      "%s (%s).\nPaper reference: 51.2%% (52.6%%) and 66.1%% (75.9%%).\n",
      Percent(le1_v, all_v).c_str(), Percent(le1_u, all_u).c_str(),
      Percent(le2_v, all_v).c_str(), Percent(le2_u, all_u).c_str());
  bench::AppendBenchJson("figure3_query_size", corpus.metrics);
  return 0;
}
