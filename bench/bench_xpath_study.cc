// Reproduces the XPath corpus studies of Section 5 (Baelde et al.;
// Pasqua): axis usage, fragment coverage (positive / Core 1.0 /
// downward / tree patterns), and the size distribution.

#include <cstdio>

#include "common/interner.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/studies.h"
#include "loggen/corpus_gen.h"

int main() {
  using namespace rwdt;
  std::printf("=== XPath corpus study (Section 5) ===\n");

  Interner dict;
  loggen::XPathCorpusOptions options;
  options.num_queries = 21100;  // the Baelde et al. corpus size
  const auto corpus = loggen::GenerateXPathCorpus(options, 2022);
  const core::XPathStudyResult r = core::RunXPathStudy(corpus, &dict);

  std::printf("queries: %zu, parsed: %zu\n\n", r.queries, r.parsed);

  AsciiTable axes({"Axis", "Queries using it", "Share"});
  for (const auto& [axis, count] : r.axis_counts) {
    axes.AddRow({axis, WithThousands(count), Percent(count, r.parsed)});
  }
  std::printf("%s", axes.Render().c_str());
  std::printf(
      "paper reference: axes in 46.5%% of queries; child 31.1%%, "
      "attribute 17.1%%,\ndescendant(-or-self) 3.6%%, "
      "ancestor(-or-self) 3.6%%.\n\n");

  AsciiTable fragments({"Fragment", "Queries", "Share",
                        "Paper (syntactic share)"});
  fragments.AddRow({"positive XPath", WithThousands(r.positive),
                    Percent(r.positive, r.parsed), "~25-30%"});
  fragments.AddRow({"Core XPath 1.0", WithThousands(r.core1),
                    Percent(r.core1, r.parsed), "~25-30%"});
  fragments.AddRow({"downward XPath", WithThousands(r.downward),
                    Percent(r.downward, r.parsed), "~25-30%"});
  fragments.AddRow({"tree patterns", WithThousands(r.tree_patterns),
                    Percent(r.tree_patterns, r.parsed),
                    "> 90% (Pasqua's corpus)"});
  std::printf("%s", fragments.Render().c_str());

  const Summary sizes = Summarize(r.sizes);
  std::printf(
      "\nsize distribution: median %llu, mean %.1f, max %llu "
      "(paper: power law,\nmajority of size <= 13, 256 queries of size "
      ">= 100).\n",
      static_cast<unsigned long long>(sizes.median), sizes.mean,
      static_cast<unsigned long long>(sizes.max));
  return 0;
}
