// Reproduces the schema-inference story of Section 4.2.3 (Theorems
// 4.8/4.9, the RWR / CRX / iDRegEx algorithms): inference quality as a
// function of sample size for SORE targets, plus the k-ORE ladder.

#include <cstdio>

#include "common/interner.h"
#include "common/rng.h"
#include "common/table.h"
#include "inference/crx.h"
#include "inference/kore.h"
#include "inference/rwr.h"
#include "regex/automaton.h"
#include "regex/glushkov.h"
#include "regex/parser.h"
#include "regex/sampler.h"

int main() {
  using namespace rwdt;
  using namespace rwdt::regex;
  std::printf(
      "=== Schema inference: SORE recovery vs sample size (Section "
      "4.2.3) ===\n");

  Interner dict;
  const std::vector<std::string> targets = {
      "a(b|c)d?",      "(a|b)+c",    "ab*c?d",
      "a?(b|c)(d|e)*", "a(b(c|d))?e", "(a|b)(c|d)(e|f)"};

  AsciiTable table({"sample size", "targets", "covers sample",
                    "equivalent to target", "no repairs"});
  for (const size_t sample_size : {2, 5, 10, 25, 75, 200}) {
    size_t covers = 0, equivalent = 0, clean = 0;
    for (size_t t = 0; t < targets.size(); ++t) {
      auto parsed = ParseRegex(targets[t], &dict);
      if (!parsed.ok()) return 1;
      const RegexPtr target = parsed.value();
      const Nfa nfa = ToNfa(target);
      Rng rng(1000 * sample_size + t);
      std::vector<Word> sample;
      if (auto w = ShortestAccepted(ToDfa(target)); w.has_value()) {
        sample.push_back(*w);
      }
      for (size_t i = 0; i < sample_size; ++i) {
        Word w;
        if (SampleAcceptedWord(nfa, 12, rng, &w)) sample.push_back(w);
      }
      const auto result = inference::InferSore(sample);
      const Nfa inferred = ToNfa(result.expression);
      bool all = true;
      for (const auto& w : sample) all = all && inferred.Accepts(w);
      covers += all;
      clean += result.repairs == 0;
      equivalent += AreEquivalent(ToDfa(result.expression), ToDfa(target));
    }
    table.AddRow({std::to_string(sample_size),
                  std::to_string(targets.size()), std::to_string(covers),
                  std::to_string(equivalent), std::to_string(clean)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nShape to hold: coverage is always total (soundness invariant); "
      "exact\nrecovery climbs with sample size, mirroring the "
      "learning-in-the-limit\nbehaviour of Theorem 4.9 / the RWR "
      "evaluation of Bex et al.\n");

  // k-ORE ladder: the language (aba)+ is not SORE-expressible; the
  // iDRegEx-style driver needs k = 2.
  std::printf("\n=== k-ORE ladder (iDRegEx-style driver) ===\n");
  Rng rng(99);
  auto target = ParseRegex("(aba)+", &dict);
  const Nfa nfa = ToNfa(target.value());
  std::vector<Word> sample;
  for (int i = 0; i < 60; ++i) {
    Word w;
    if (SampleAcceptedWord(nfa, 15, rng, &w)) sample.push_back(w);
  }
  size_t chosen_k = 0;
  const RegexPtr learned =
      inference::InferBestKore(sample, 3, &chosen_k);
  std::printf("target (aba)+ : chosen k = %zu, inferred %s\n", chosen_k,
              learned->ToString(dict).c_str());
  std::printf("covers sample: %s\n",
              [&] {
                const Nfa inf = ToNfa(learned);
                for (const auto& w : sample) {
                  if (!inf.Accepts(w)) return "NO";
                }
                return "yes";
              }());
  return 0;
}
