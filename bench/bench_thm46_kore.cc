// Reproduces Theorem 4.6's upper-bound mechanics: a k-ORE over alphabet
// Sigma converts to a DFA with at most |Sigma| * 2^k states, so k-ORE
// containment is PTIME for fixed k. We measure DFA sizes and containment
// time as |Sigma| grows for k = 1, 2, 3.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "regex/automaton.h"
#include "regex/fragments.h"
#include "regex/glushkov.h"
#include "regex/sampler.h"

namespace {

using namespace rwdt;
using namespace rwdt::regex;

/// A random k-ORE over `sigma` symbols: concatenation/union/postfix over
/// k copies of each symbol, shuffled.
RegexPtr MakeKore(size_t sigma, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<RegexPtr> atoms;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t c = 0; c < k; ++c) {
      RegexPtr atom = Regex::Symbol(static_cast<SymbolId>(s));
      switch (rng.NextBelow(4)) {
        case 0:
          atom = Regex::Star(atom);
          break;
        case 1:
          atom = Regex::Optional(atom);
          break;
        default:
          break;
      }
      atoms.push_back(std::move(atom));
    }
  }
  // Shuffle and group into a chain of small unions.
  for (size_t i = atoms.size(); i > 1; --i) {
    std::swap(atoms[i - 1], atoms[rng.NextBelow(i)]);
  }
  std::vector<RegexPtr> parts;
  for (size_t i = 0; i < atoms.size(); i += 2) {
    if (i + 1 < atoms.size() && rng.NextBool(0.3)) {
      parts.push_back(Regex::Union(atoms[i], atoms[i + 1]));
    } else {
      parts.push_back(atoms[i]);
      if (i + 1 < atoms.size()) parts.push_back(atoms[i + 1]);
    }
  }
  return Regex::Concat(std::move(parts));
}

void RunKoreContainment(benchmark::State& state, size_t k) {
  const size_t sigma = static_cast<size_t>(state.range(0));
  const RegexPtr e1 = MakeKore(sigma, k, 11 * k + sigma);
  const RegexPtr e2 = MakeKore(sigma, k, 31 * k + sigma);
  if (!IsKore(e1, k) || !IsKore(e2, k)) {
    state.SkipWithError("generator produced a non-k-ORE");
    return;
  }
  size_t dfa_states = 0;
  for (auto _ : state) {
    const Dfa d1 = ToDfa(e1);
    const Dfa d2 = ToDfa(e2);
    dfa_states = std::max(d1.NumStates(), d2.NumStates());
    benchmark::DoNotOptimize(IsContained(d1, d2));
  }
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
  state.counters["sigma_2k_bound"] =
      static_cast<double>(sigma) * static_cast<double>(1ull << k);
  state.SetComplexityN(state.range(0));
}

void BM_KoreContainment_K1(benchmark::State& state) {
  RunKoreContainment(state, 1);
}
void BM_KoreContainment_K2(benchmark::State& state) {
  RunKoreContainment(state, 2);
}
void BM_KoreContainment_K3(benchmark::State& state) {
  RunKoreContainment(state, 3);
}
BENCHMARK(BM_KoreContainment_K1)->RangeMultiplier(2)->Range(4, 64);
BENCHMARK(BM_KoreContainment_K2)->RangeMultiplier(2)->Range(4, 64);
BENCHMARK(BM_KoreContainment_K3)->RangeMultiplier(2)->Range(4, 32);

}  // namespace

BENCHMARK_MAIN();
