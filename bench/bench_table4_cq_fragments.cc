// Reproduces Table 4: queries using only And / Filter (the CQ+F
// fragment) in the DBpedia-BritM logs.

#include <cstdio>

#include "common/table.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  const uint64_t scale = bench::ScaleFromEnv(20000);
  std::printf(
      "=== Table 4: And/Filter operator sets, DBpedia-BritM ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  const core::LogAggregates& v = corpus.dbpedia_britm.valid_agg;
  const core::LogAggregates& u = corpus.dbpedia_britm.unique_agg;
  AsciiTable table({"Operator Set", "AbsoluteV", "RelativeV", "AbsoluteU",
                    "RelativeU"});
  auto row = [&](const std::string& name, uint64_t av, uint64_t au) {
    table.AddRow({name, WithThousands(av),
                  Percent(av, v.select_ask_construct),
                  WithThousands(au),
                  Percent(au, u.select_ask_construct)});
  };
  row("none", v.ops_none, u.ops_none);
  row("And", v.ops_and, u.ops_and);
  row("Filter", v.ops_filter, u.ops_filter);
  row("And, Filter", v.ops_and_filter, u.ops_and_filter);
  table.AddSeparator();
  row("CQ+F subtotal", v.cq_f, u.cq_f);
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper reference: none 33.32%% (36.31%%), And 4.69%% (8.87%%), "
      "Filter 9.53%%\n(16.93%%), And+Filter 2.98%% (4.77%%); CQ+F "
      "subtotal 50.51%% (66.89%%). The\nshape to hold: conjunctive "
      "queries are roughly half of the DBpedia-BritM\nlogs, dominated by "
      "the operator-free class.\n");
  bench::AppendBenchJson("table4_cq_fragments", corpus.metrics);
  return 0;
}
