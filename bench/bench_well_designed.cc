// Reproduces the Section 9.1/9.4 well-designedness statistics: among the
// queries that only use And/Filter/Optional, nearly all are
// well-designed (paper: 98.74% / 94.18%), and evaluation of
// well-designed OPTIONAL stays benign on a concrete store.

#include <cstdio>

#include <chrono>

#include "common/interner.h"
#include "common/rng.h"
#include "common/table.h"
#include "graph/generators.h"
#include "sparql/analysis.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  const uint64_t scale = bench::ScaleFromEnv(40000);
  std::printf("=== Well-designed patterns (Sections 9.1, 9.4) ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  AsciiTable table({"Group", "AFO-only V", "share", "well-designed V",
                    "of AFO-only"});
  for (const core::SourceStudy* group :
       {&corpus.dbpedia_britm, &corpus.wikidata}) {
    const core::LogAggregates& v = group->valid_agg;
    table.AddRow({group->name, WithThousands(v.afo_only),
                  Percent(v.afo_only, v.select_ask_construct),
                  WithThousands(v.well_designed),
                  Percent(v.well_designed, v.afo_only)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper reference: And/Filter/Optional-only queries are 62.31%% "
      "of\nDBpedia-BritM and 27.72%% of Wikidata; of those, 98.74%% and "
      "94.18%% are\nwell-designed.\n");

  // Micro-benchmark: evaluating an OPTIONAL-heavy query on a store.
  Interner dict;
  Rng rng(7);
  graph::TripleStore store = graph::MakeRdfDataset(3000, 5, 4, &dict, rng);
  const std::string query_text =
      "SELECT * WHERE { ?x pred:links_to ?y "
      "OPTIONAL { ?y pred:links_to ?z } }";
  auto q = sparql::ParseSparql(query_text, &dict);
  if (!q.ok()) return 1;
  const bool wd = sparql::IsWellDesigned(q.value());
  sparql::Evaluator eval(store, &dict);
  const auto start = std::chrono::steady_clock::now();
  const auto rows_or = eval.EvalQuery(q.value());
  const auto stop = std::chrono::steady_clock::now();
  if (!rows_or.ok()) return 1;
  const auto& rows = rows_or.value();
  std::printf(
      "\nevaluation check: %s -> well-designed=%s, %zu solutions in %.1f "
      "ms\n",
      query_text.c_str(), wd ? "yes" : "no", rows.size(),
      std::chrono::duration<double, std::milli>(stop - start).count());
  bench::AppendBenchJson("well_designed", corpus.metrics);
  return 0;
}
