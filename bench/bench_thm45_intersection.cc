// Reproduces the complexity landscape of Theorem 4.5 (intersection
// non-emptiness): RE(a,a+) and RE(a,(+a)) decide in polynomial time via
// run alignment / per-position intersection, while the generic
// product-automaton procedure explodes on instances whose only witnesses
// are exponentially long (Chinese-remainder-style unary constraints).
// The NP upper bound's polynomial witness verification is exercised via
// run-length-compressed membership checks.

#include <benchmark/benchmark.h>

#include "regex/automaton.h"
#include "regex/chain_algorithms.h"
#include "regex/glushkov.h"

namespace {

using namespace rwdt;
using namespace rwdt::regex;

ChainRegex UnaryAtLeast(SymbolId sym, size_t count) {
  // a^count a* : at least `count` copies of sym, as a chain regex.
  ChainRegex c;
  for (size_t i = 0; i < count; ++i) {
    SimpleFactor f;
    f.symbols = {sym};
    f.modifier = FactorModifier::kOnce;
    c.factors.push_back(f);
  }
  SimpleFactor star;
  star.symbols = {sym};
  star.modifier = FactorModifier::kStar;
  c.factors.push_back(star);
  return c;
}

void BM_IntersectionReAPlus_Ptime(benchmark::State& state) {
  // n expressions over one letter with increasing lower bounds; the
  // specialized algorithm merges runs in linear time.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<ChainRegex> chains;
  for (size_t i = 1; i <= n; ++i) chains.push_back(UnaryAtLeast(0, i));
  for (auto _ : state) {
    CompressedWord witness;
    auto r = UnaryRunIntersection(chains, &witness);
    if (!r.has_value() || !*r) state.SkipWithError("expected non-empty");
    benchmark::DoNotOptimize(witness);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntersectionReAPlus_Ptime)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oNSquared);

/// Generic product-automaton intersection on "period" instances
/// (a^{p_i})* whose smallest witness has length lcm(p_1..p_k): the
/// explored configuration space grows with the product of the periods.
void BM_IntersectionGeneric_Exponential(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t primes[] = {2, 3, 5, 7, 11, 13};
  std::vector<Nfa> nfas;
  for (size_t i = 0; i < k; ++i) {
    std::vector<RegexPtr> reps;
    for (size_t j = 0; j < primes[i]; ++j) {
      reps.push_back(Regex::Symbol(0));
    }
    nfas.push_back(ToNfa(Regex::Plus(Regex::Concat(std::move(reps)))));
  }
  for (auto _ : state) {
    Word witness;
    auto r = IntersectionNonEmpty(nfas, &witness);
    if (!r.has_value() || !*r) state.SkipWithError("expected non-empty");
    benchmark::DoNotOptimize(witness);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntersectionGeneric_Exponential)->DenseRange(1, 6, 1);

/// NP witness verification: a compressed witness of astronomical length
/// (lcm of large counts) is verified in time polynomial in its
/// *description*, exactly as the Theorem 4.5 upper-bound argument needs.
void BM_CompressedWitnessVerification(benchmark::State& state) {
  const size_t runs = static_cast<size_t>(state.range(0));
  ChainRegex chain;
  CompressedWord witness;
  for (size_t i = 0; i < runs; ++i) {
    const SymbolId sym = static_cast<SymbolId>(i % 7);
    SimpleFactor head;
    head.symbols = {sym};
    head.modifier = FactorModifier::kOnce;
    chain.factors.push_back(head);
    SimpleFactor tail;
    tail.symbols = {sym};
    tail.modifier = FactorModifier::kPlus;
    chain.factors.push_back(tail);
    witness.runs.emplace_back(sym, (1ull << 50) + i);  // ~10^15 symbols
    const SymbolId sep = static_cast<SymbolId>(7 + (i % 3));
    SimpleFactor sep_factor;
    sep_factor.symbols = {sep};
    sep_factor.modifier = FactorModifier::kOnce;
    chain.factors.push_back(sep_factor);
    witness.runs.emplace_back(sep, 1);
  }
  for (auto _ : state) {
    const bool member = ChainMatchesCompressed(chain, witness);
    if (!member) state.SkipWithError("expected member");
    benchmark::DoNotOptimize(member);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompressedWitnessVerification)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
