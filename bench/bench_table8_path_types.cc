// Reproduces Table 8: the property-path type distribution of the robotic
// Wikidata logs, plus the Section 9.6 class coverage (simple transitive
// expressions, C_tract / T_tract certificates).

#include <cstdio>

#include "common/table.h"
#include "study_util.h"

int main() {
  using namespace rwdt;
  using paths::Table8Type;
  const uint64_t scale = bench::ScaleFromEnv(20000);
  std::printf("=== Table 8: property path structure, Wikidata ===\n");
  const bench::StudyCorpus corpus = bench::RunFullStudy(scale);

  const core::LogAggregates& v = corpus.wikidata.valid_agg;
  const core::LogAggregates& u = corpus.wikidata.unique_agg;
  const Table8Type transitive[] = {
      Table8Type::kAStar,         Table8Type::kABStarOrAPlus,
      Table8Type::kABStarCStar,   Table8Type::kDisjStar,
      Table8Type::kABStarC,       Table8Type::kAStarBStar,
      Table8Type::kABCStar,       Table8Type::kAOptBStar,
      Table8Type::kDisjPlus,      Table8Type::kDisjBStar,
      Table8Type::kOtherTransitive};
  const Table8Type nontransitive[] = {
      Table8Type::kWord,    Table8Type::kDisj,
      Table8Type::kDisjOpt, Table8Type::kWordOptTail,
      Table8Type::kInverse, Table8Type::kABCOpt,
      Table8Type::kOtherNonTransitive};

  AsciiTable table({"Expression Type", "AbsoluteV", "RelativeV",
                    "AbsoluteU", "RelativeU"});
  auto row = [&](Table8Type t) {
    const uint64_t av = v.path_types.count(t) ? v.path_types.at(t) : 0;
    const uint64_t au = u.path_types.count(t) ? u.path_types.at(t) : 0;
    table.AddRow({paths::Table8TypeName(t), WithThousands(av),
                  Percent(av, v.property_paths, true), WithThousands(au),
                  Percent(au, u.property_paths, true)});
  };
  for (Table8Type t : transitive) row(t);
  table.AddSeparator();
  for (Table8Type t : nontransitive) row(t);
  table.AddSeparator();
  table.AddRow({"Total", WithThousands(v.property_paths), "100%",
                WithThousands(u.property_paths), "100%"});
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nClass coverage (Section 9.6):\n"
      "  simple transitive expressions: %s (V) / %s (U)\n"
      "  certified in C_tract:          %s (V) / %s (U)\n"
      "  certified in T_tract:          %s (V) / %s (U)\n",
      Percent(v.path_ste, v.property_paths).c_str(),
      Percent(u.path_ste, u.property_paths).c_str(),
      Percent(v.path_ctract, v.property_paths).c_str(),
      Percent(u.path_ctract, u.property_paths).c_str(),
      Percent(v.path_ttract, v.property_paths).c_str(),
      Percent(u.path_ttract, u.property_paths).c_str());
  std::printf(
      "\nPaper reference (robotic, RelativeV): a* 50.48%%, {ab*, a+} "
      "17.07%%,\na1...ak 24.26%%, A 5.52%%, ab*c* 1.49%%, A* 0.60%%; "
      "98.4%% of robotic paths\nare simple transitive expressions. Shape "
      "to hold: a* dominates transitive\ntypes, plain words dominate "
      "non-transitive ones, STEs cover ~98-99%%.\n");
  bench::AppendBenchJson("table8_path_types", corpus.metrics);
  return 0;
}
