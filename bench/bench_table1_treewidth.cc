// Reproduces Table 1 (Maniu et al.): lower and upper treewidth bounds
// for five structural classes of real-world graphs. The datasets are
// synthetic analogues (DESIGN.md substitution table) with sizes scaled
// down; the shape to hold is the *class contrast*: road networks and
// genealogies have tiny bounds relative to size, web-like and random
// communication networks have huge ones.

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/studies.h"
#include "graph/generators.h"

int main() {
  using namespace rwdt;
  Rng rng(2022);
  std::printf("=== Table 1: treewidth bounds per dataset class ===\n");
  std::fflush(stdout);

  struct Dataset {
    std::string name;
    graph::SimpleGraph g;
    bool min_fill;
    const char* paper;  // reference row from the paper
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"HongKong (road)",
                      graph::MakeRoadNetwork(160, 20, 0.08, 0.06, rng),
                      false, "321,210 nodes: lower 32, upper 145"});
  datasets.push_back({"Paris (road)",
                      graph::MakeRoadNetwork(300, 28, 0.10, 0.04, rng),
                      false, "4,325,486 nodes: lower 55, upper 521"});
  datasets.push_back({"Wikipedia (web-like)",
                      graph::MakePreferentialAttachment(900, 7, rng),
                      false, "252,335 nodes: lower 1,007, upper 19,876"});
  datasets.push_back({"Gnutella (communication)",
                      graph::MakeRandomGraph(1100, 2500, rng), false,
                      "65,586 nodes: lower 244, upper 9,374"});
  datasets.push_back({"Royal (genealogy)",
                      graph::MakeGenealogy(3007, 0.04, rng), true,
                      "3,007 nodes: lower 11, upper 24"});

  AsciiTable table({"Dataset", "#nodes", "#edges", "lower tw", "upper tw",
                    "upper/#nodes"});
  for (const auto& d : datasets) {
    std::fprintf(stderr, "  bounding %s...\n", d.name.c_str());
    const core::TreewidthRow row =
        core::MeasureTreewidth(d.name, d.g, d.min_fill);
    table.AddRow({row.name, WithThousands(row.nodes),
                  WithThousands(row.edges), WithThousands(row.lower),
                  WithThousands(row.upper),
                  Percent(row.upper, row.nodes)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper reference (Table 1):\n"
      "  HongKong  321,210 / 409,038:   32 .. 145      (0.05%% of n)\n"
      "  Paris     4,325,486 / 5,395,531: 55 .. 521    (0.01%% of n)\n"
      "  Wikipedia 252,335 / 2,427,434: 1,007 .. 19,876 (7.9%% of n)\n"
      "  Gnutella  65,586 / 147,892:    244 .. 9,374   (14.3%% of n)\n"
      "  Royal     3,007 / 4,862:       11 .. 24       (0.8%% of n)\n"
      "Shape to hold: road/genealogy bounds are a tiny fraction of n;\n"
      "web-like and random-communication bounds are a large fraction,\n"
      "so treewidth-based algorithms are hopeless there (Section 7.1).\n");
  return 0;
}
