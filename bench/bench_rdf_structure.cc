// Reproduces the RDF structure analyses of Section 7.1 (Ding-Finin,
// Bachlechner-Strang, Fernandez et al.): degree power laws,
// predicate/subject/object overlaps, predicate lists, and per-pair
// uniqueness statistics.

#include <cstdio>

#include "common/interner.h"
#include "common/rng.h"
#include "common/table.h"
#include "graph/generators.h"
#include "graph/rdf.h"

int main() {
  using namespace rwdt;
  std::printf("=== RDF structure study (Section 7.1) ===\n");

  Interner dict;
  Rng rng(2022);
  const graph::TripleStore store =
      graph::MakeRdfDataset(30000, 8, 5, &dict, rng);
  const graph::RdfStructureStats s = graph::AnalyzeRdfStructure(store);

  AsciiTable table({"Metric", "Measured", "Paper reference"});
  table.AddRow({"triples", WithThousands(s.num_triples), "-"});
  table.AddRow({"subjects / predicates / objects",
                WithThousands(s.num_subjects) + " / " +
                    WithThousands(s.num_predicates) + " / " +
                    WithThousands(s.num_objects),
                "-"});
  table.AddRow({"|P ∩ S| / |P ∪ S|", Fixed(s.predicate_subject_overlap, 7),
                "0 .. 1e-3 (Fernandez)"});
  table.AddRow({"|P ∩ O| / |P ∪ O|", Fixed(s.predicate_object_overlap, 7),
                "0 .. 1e-3 (Fernandez)"});
  table.AddRow({"out-degree mean / max",
                Fixed(s.out_degree_mean, 2) + " / " +
                    Fixed(s.out_degree_max, 0),
                "mean 9.56, max 7,739 (FOAF)"});
  table.AddRow({"in-degree mean / max",
                Fixed(s.in_degree_mean, 2) + " / " +
                    Fixed(s.in_degree_max, 0),
                "highly skewed"});
  table.AddRow({"in-degree power-law alpha", Fixed(s.in_degree_alpha, 2),
                "power law (Ding-Finin)"});
  table.AddRow({"distinct predicate lists / subjects",
                Fixed(s.predicate_list_ratio, 4),
                "~0.01 (99% share a list)"});
  table.AddRow({"objects per (s,p)", Fixed(s.objects_per_sp, 3),
                "close to 1"});
  table.AddRow({"subjects per (p,o) (stddev)",
                Fixed(s.subjects_per_po, 2) + " (" +
                    Fixed(s.subjects_per_po_stddev, 2) + ")",
                "~1 with high stddev"});
  table.AddRow({"predicates per object",
                Fixed(s.predicates_per_object, 3), "close to 1"});
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nShape to hold: predicates essentially never appear as "
      "subjects/objects\n(justifying the edge-labeled-graph abstraction), "
      "in-degrees are power-law\nskewed, and subjects overwhelmingly "
      "share a handful of predicate lists.\n");
  return 0;
}
